"""Register renaming: physical register file, free lists, and RATs.

One flat physical register file holds values for both threads; the
main-thread pool occupies pregs ``1..main_size`` and the TEA partition
(when configured) the pregs above it — the paper's "192 Physical
Registers are reserved for the TEA thread when it is active".
Preg 0 is the hardwired zero register: always ready, value 0, never
allocated, and the permanent mapping of architectural ``r0``.

The main RAT is checkpointed per predicted branch (at rename) for
single-cycle misprediction recovery; the TEA shadow RAT is a plain copy
of the main RAT taken at TEA initiation (paper §IV-D).
"""

from __future__ import annotations

from collections import deque

from ..isa import NUM_ARCH_REGS

ZERO_PREG = 0


class PhysicalRegisterFile:
    """Values + ready bits for all physical registers (both pools).

    Event-driven wakeup: every preg carries a *wakeup list* of the RS
    entries consuming it.  The scheduler subscribes one list entry per
    (non-zero) source occurrence at insert and unsubscribes when the
    uop leaves the RS; :meth:`write` walks the list, decrementing each
    consumer's outstanding-source count and handing consumers whose
    **last** outstanding source just arrived to ``wakeup_sink`` (the
    scheduler's ready pool).  This is what lets ``select()`` inspect
    only operand-ready candidates instead of polling every
    reservation-station entry every cycle.

    Subscriptions persist while the consumer sits in the RS — even
    once all its sources are ready — because a ready bit can go False
    again: the TEA thread's valid-bit + refcount scheme may free a
    preg that a not-yet-issued consumer still names (e.g. after a
    structural retry double-decremented its refcount), and a main preg
    named by a TEA uop's shadow-RAT snapshot may be freed at retire.
    When such a preg is *reallocated*, :meth:`allocate` walks the same
    list in reverse (``unready_sink``), pulling consumers back out of
    the ready pool exactly as the legacy polling scheduler's per-cycle
    ready-bit check would have.
    """

    def __init__(self, main_size: int, tea_size: int = 0):
        total = 1 + main_size + tea_size  # +1 for the zero preg
        self.main_size = main_size
        self.tea_size = tea_size
        self.values: list[int | float] = [0] * total
        self.ready: list[bool] = [False] * total
        self.ready[ZERO_PREG] = True
        self.main_free: deque[int] = deque(range(1, 1 + main_size))
        self.tea_free: deque[int] = deque(range(1 + main_size, total))
        # Per-preg wakeup lists of in-RS consumer DynUops.
        self.waiters: list[list] = [[] for _ in range(total)]
        # Called with a uop when its last outstanding source arrives.
        self.wakeup_sink = None
        # Called with a uop when a source it had counted as ready is
        # reallocated out from under it (ready-bit True -> False).
        self.unready_sink = None

    def allocate(self, tea: bool = False) -> int | None:
        """Allocate a preg from the requested pool (None if exhausted)."""
        pool = self.tea_free if tea else self.main_free
        if not pool:
            return None
        preg = pool.popleft()
        was_ready = self.ready[preg]
        self.ready[preg] = False
        self.values[preg] = 0
        waiters = self.waiters[preg]
        if waiters and was_ready:
            # The preg was freed with live consumers still subscribed
            # (TEA valid-bit/refcount freeing, or a main preg named by
            # a TEA shadow-RAT snapshot freed at retire).  Reallocating
            # it makes those consumers operand-unready again until the
            # new producer writes; push them back to the waiting pool.
            sink = self.unready_sink
            for uop in waiters:
                uop.pending_srcs += 1
                if uop.pending_srcs == 1 and sink is not None:
                    sink(uop)
        return preg

    # -- wakeup lists ---------------------------------------------------
    def subscribe(self, preg: int, uop) -> None:
        """Add ``uop`` to ``preg``'s consumer list (one entry per
        source occurrence; duplicates are intentional)."""
        self.waiters[preg].append(uop)

    def unsubscribe(self, preg: int, uop) -> None:
        """Remove one consumer-list entry for ``uop``."""
        waiters = self.waiters[preg]
        if uop in waiters:
            waiters.remove(uop)

    def free(self, preg: int) -> None:
        """Return a preg to its pool (zero preg is never freed)."""
        if preg == ZERO_PREG:
            return
        if preg <= self.main_size:
            self.main_free.append(preg)
        else:
            self.tea_free.append(preg)

    def is_tea_preg(self, preg: int) -> bool:
        return preg > self.main_size

    def write(self, preg: int, value: int | float) -> None:
        if preg == ZERO_PREG:
            return
        self.values[preg] = value
        self.ready[preg] = True
        waiters = self.waiters[preg]
        if waiters:
            sink = self.wakeup_sink
            for uop in waiters:
                uop.pending_srcs -= 1
                if uop.pending_srcs == 0 and sink is not None:
                    sink(uop)

    def read(self, preg: int) -> int | float:
        return self.values[preg]

    def main_available(self) -> int:
        return len(self.main_free)

    def tea_available(self) -> int:
        return len(self.tea_free)


class RegisterAliasTable:
    """Architectural -> physical register map with cheap checkpoints."""

    def __init__(self) -> None:
        self.map: list[int] = [ZERO_PREG] * NUM_ARCH_REGS

    def lookup(self, arch_reg: int) -> int:
        return self.map[arch_reg]

    def set(self, arch_reg: int, preg: int) -> int:
        """Update a mapping; returns the previous preg."""
        old = self.map[arch_reg]
        self.map[arch_reg] = preg
        return old

    def checkpoint(self) -> tuple[int, ...]:
        return tuple(self.map)

    def restore(self, snap: tuple[int, ...]) -> None:
        self.map = list(snap)

    def copy_from(self, other: "RegisterAliasTable") -> None:
        self.map = list(other.map)


def rename_sources(rat: RegisterAliasTable, srcs: tuple[int, ...]) -> tuple[int, ...]:
    """Map architectural sources to physical registers (r0 -> preg 0).

    ``map[REG_ZERO]`` is pinned to ``ZERO_PREG``: every ``set()`` call
    site filters ``REG_ZERO`` destinations, so no explicit special case
    is needed here (this is the renamer's hottest helper).
    """
    table = rat.map
    return tuple([table[reg] for reg in srcs])
