"""Simulation statistics: IPC, misprediction accounting, TEA metrics.

All figures in the paper's evaluation derive from the counters here:

* Fig. 5/8/9 — IPC (``ipc``) of different configurations;
* Fig. 6 — ``mpki`` (direction + target mispredictions per kilo-instr);
* Fig. 7/10b — the coverage breakdown counters;
* Fig. 10a — precomputation accuracy;
* Fig. 10c — ``tea_cycles_saved`` / covered branches;
* Table III — fetched-uop footprint counters.

Counters are only accumulated after the warmup boundary, which the
pipeline signals via :meth:`start_measurement`.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields


@dataclass
class SimStats:
    """Mutable counter block owned by one pipeline instance."""

    measuring: bool = False
    cycles: int = 0
    retired_instructions: int = 0
    retired_branches: int = 0
    fetched_uops: int = 0            # main thread, includes wrong path
    tea_fetched_uops: int = 0
    # Misprediction accounting (measured at main-thread resolution).
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    flushes: int = 0
    early_flushes: int = 0           # issued by the TEA thread
    extra_flushes: int = 0           # TEA precomputed wrong, main re-flushed
    # TEA coverage breakdown over *mispredicted* branches.
    covered_timely: int = 0          # early flush saved >= 1 cycle
    covered_late: int = 0            # TEA resolved, saved 0 cycles
    incorrect_precomputations: int = 0
    uncovered_mispredicts: int = 0
    # TEA precomputation volume (all resolutions, right or wrong preds).
    tea_resolved_branches: int = 0
    tea_wrong_resolutions: int = 0
    tea_cycles_saved: int = 0
    tea_terminations: int = 0
    tea_poison_terminations: int = 0
    tea_initiations: int = 0
    tea_blocked_flushes: int = 0
    # TEA graceful degradation (accuracy gating; repro.verify PR).
    tea_chain_disables: int = 0
    tea_chain_reenables: int = 0
    tea_suppressed_resolutions: int = 0
    tea_killed: int = 0              # 1 once the global kill-switch fired
    # Runtime verification (repro.verify).
    invariant_checks: int = 0
    faults_injected: int = 0
    # Branch Runahead counters.
    runahead_overrides: int = 0
    runahead_wrong_overrides: int = 0
    runahead_chain_uops: int = 0
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def start_measurement(self) -> None:
        """Reset counters at the warmup boundary and begin measuring.

        Every dataclass field (including any added by subclasses) is
        reset to its declared default — except ``extra``, whose contents
        are preserved across the boundary (it holds cross-measurement
        context such as the per-PC misprediction map).
        """
        for spec in fields(self):
            if spec.name == "extra":
                continue
            if spec.default is not MISSING:
                setattr(self, spec.name, spec.default)
            else:
                setattr(self, spec.name, spec.default_factory())
        self.measuring = True

    # Derived metrics -------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.retired_instructions / self.cycles if self.cycles else 0.0

    @property
    def total_mispredicts(self) -> int:
        return self.direction_mispredicts + self.target_mispredicts

    @property
    def mpki(self) -> float:
        if not self.retired_instructions:
            return 0.0
        return 1000.0 * self.total_mispredicts / self.retired_instructions

    @property
    def tea_accuracy(self) -> float:
        """Fraction of TEA branch resolutions that were correct."""
        if not self.tea_resolved_branches:
            return 1.0
        return 1.0 - self.tea_wrong_resolutions / self.tea_resolved_branches

    @property
    def coverage(self) -> float:
        """Fraction of mispredictions the TEA thread resolved early."""
        covered = self.covered_timely + self.covered_late
        total = covered + self.uncovered_mispredicts + self.incorrect_precomputations
        return covered / total if total else 0.0

    @property
    def avg_cycles_saved(self) -> float:
        covered = self.covered_timely + self.covered_late
        return self.tea_cycles_saved / covered if covered else 0.0

    @property
    def footprint_uops(self) -> int:
        """Total dynamic uops fetched (main wrong-path included + TEA)."""
        return self.fetched_uops + self.tea_fetched_uops

    def as_dict(self) -> dict:
        """Flat dict of raw + derived metrics (for reports and tests)."""
        raw = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "extra"
        }
        raw.update(
            ipc=self.ipc,
            mpki=self.mpki,
            total_mispredicts=self.total_mispredicts,
            tea_accuracy=self.tea_accuracy,
            coverage=self.coverage,
            avg_cycles_saved=self.avg_cycles_saved,
            footprint_uops=self.footprint_uops,
        )
        return raw

    def publish_to(self, registry, namespace: str = "sim") -> None:
        """Publish raw + derived values into a metrics registry.

        This is the bridge to :mod:`repro.obs`: the hot-path counter
        block stays a plain dataclass (cheap increments), and the
        registry ingests a snapshot under ``<namespace>.<name>`` gauges
        whenever an exporter asks for one.
        """
        for name, value in self.as_dict().items():
            registry.gauge(f"{namespace}.{name}").set(value)
