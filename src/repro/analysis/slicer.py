"""Static backward slicing from conditional branches.

For each conditional branch the slicer transitively collects every
instruction whose value may flow into the branch's comparison — the
static ground truth for the dependence chains the TEA thread's
Backward Dataflow Walk discovers dynamically (paper §III-A/§IV-C).
Register dependences follow the reaching-definition use-def chains;
memory dependences follow the conservative may-alias store sets, so a
chain that passes a value through memory (§III-D) stays connected.

Each slice is reported both as a set of instruction PCs and as
per-basic-block bit-masks — bit ``k`` set means instruction ``k`` of
the block is in the chain — which is exactly the shape the TEA Block
Cache stores, so the oracle can compare static and dynamic masks
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import INSTRUCTION_BYTES, Instruction
from ..isa.program import Program
from .cfg import CFG
from .dataflow import DataflowResult, analyze_dataflow


@dataclass(frozen=True)
class BranchSlice:
    """The static backward slice of one conditional branch."""

    branch_pc: int
    line: int | None
    #: PCs of every instruction in the chain (the branch included).
    pcs: frozenset[int]
    #: Block Cache-shaped masks: block start PC -> bit-mask over the
    #: block's instructions (bit k = instruction k is in the chain).
    masks: dict[int, int] = field(compare=False)
    #: True when the slice crosses indirect control flow (a block
    #: ending in ``jr``/``callr``, or a conservative indirect target) —
    #: its CFG edges, and therefore the slice, are approximate.
    has_indirect: bool
    #: True when at least one dependence flows through memory.
    through_memory: bool

    @property
    def size(self) -> int:
        return len(self.pcs)


@dataclass
class ProgramSlices:
    """All conditional-branch slices of one program."""

    program: Program
    cfg: CFG
    dataflow: DataflowResult
    branches: dict[int, BranchSlice]

    def slice_at(self, pc: int) -> BranchSlice | None:
        return self.branches.get(pc)

    def combined_masks(self, pcs: list[int] | None = None) -> dict[int, int]:
        """OR of the per-branch masks (all branches, or a subset) —
        what a perfectly trained Block Cache would converge to."""
        merged: dict[int, int] = {}
        for pc, sl in self.branches.items():
            if pcs is not None and pc not in pcs:
                continue
            for start, mask in sl.masks.items():
                merged[start] = merged.get(start, 0) | mask
        return merged


def slice_program(
    program: Program,
    dataflow: DataflowResult | None = None,
) -> ProgramSlices:
    """Compute the backward slice of every reachable conditional branch."""
    df = dataflow or analyze_dataflow(program)
    cfg = df.cfg
    instrs = program.instructions
    reachable_pcs = {
        pc for start in cfg.reachable for pc in cfg.blocks[start].pcs()
    }
    branches: dict[int, BranchSlice] = {}
    for i, ins in enumerate(instrs):
        if ins.is_conditional and ins.pc in reachable_pcs:
            branches[ins.pc] = _slice_from(program, cfg, df, i, ins)
    return ProgramSlices(program=program, cfg=cfg, dataflow=df, branches=branches)


def _slice_from(
    program: Program,
    cfg: CFG,
    df: DataflowResult,
    branch_index: int,
    branch: Instruction,
) -> BranchSlice:
    instrs = program.instructions
    in_slice: set[int] = {branch_index}
    work = [branch_index]
    through_memory = False
    while work:
        i = work.pop()
        for defs in df.ud[i].values():
            for d in defs:
                if d not in in_slice:
                    in_slice.add(d)
                    work.append(d)
        stores = df.mem_ud.get(i)
        if stores:
            through_memory = True
            for s in stores:
                if s not in in_slice:
                    in_slice.add(s)
                    work.append(s)

    pcs = frozenset(instrs[i].pc for i in in_slice)
    masks: dict[int, int] = {}
    has_indirect = False
    for pc in pcs:
        block = program.block_containing(pc)
        assert block is not None
        start = block.start_pc
        offset = (pc - start) // INSTRUCTION_BYTES
        masks[start] = masks.get(start, 0) | (1 << offset)
        if start in cfg.indirect_blocks or start in cfg.indirect_targets:
            has_indirect = True
    return BranchSlice(
        branch_pc=branch.pc,
        line=branch.line,
        pcs=pcs,
        masks=masks,
        has_indirect=has_indirect,
        through_memory=through_memory,
    )
