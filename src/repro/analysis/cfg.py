"""Control-flow graph construction over an assembled program.

Nodes are the program's existing :class:`~repro.isa.program.BasicBlock`
records (the same blocks that tag TEA Block Cache entries, so slicer
bit-masks line up bit-for-bit with the dynamic masks).  Edges come from
the block terminator:

* conditional branches: target + fallthrough,
* direct jumps/calls: the encoded target (a ``call`` additionally
  registers its fallthrough as a *return site*),
* ``ret``: conservative edges to every return site,
* ``jr``/``callr`` (indirect): conservative edges to every block that
  contains a code label — label addresses are the only values a
  workload can materialize as jump targets (``la``),
* anything else: fallthrough.

Blocks whose fallthrough would leave the instruction image are recorded
in :attr:`CFG.falls_off_end`; reachability is a forward closure from
the entry block over these edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import UopClass
from ..isa.instructions import Instruction
from ..isa.program import BasicBlock, Program


@dataclass(frozen=True)
class CFG:
    """An explicit control-flow graph over a program's basic blocks."""

    program: Program
    entry: int
    successors: dict[int, tuple[int, ...]]
    predecessors: dict[int, tuple[int, ...]]
    reachable: frozenset[int]
    #: Blocks whose terminator is indirect control flow (``jr``,
    #: ``callr``, ``ret``) — their out-edges are conservative.
    indirect_blocks: frozenset[int]
    #: Blocks that are conservative *targets* of ``jr``/``callr`` edges.
    indirect_targets: frozenset[int]
    #: Block starts of the instruction after each call (``ret`` edges).
    return_sites: frozenset[int]
    #: Reachable blocks whose execution can fall through past the last
    #: instruction of the image (no terminator on the last path).
    falls_off_end: frozenset[int]

    @property
    def blocks(self) -> dict[int, BasicBlock]:
        return self.program.basic_blocks

    def block(self, start_pc: int) -> BasicBlock:
        return self.program.basic_blocks[start_pc]

    def terminator(self, start_pc: int) -> Instruction:
        """The last instruction of a block."""
        instr = self.program.instruction_at(self.blocks[start_pc].end_pc)
        assert instr is not None
        return instr

    def reachable_blocks(self) -> list[BasicBlock]:
        """Reachable blocks in ascending start-PC order."""
        return [
            block
            for start, block in sorted(self.blocks.items())
            if start in self.reachable
        ]


def _block_start(program: Program, pc: int) -> int | None:
    block = program.block_containing(pc)
    return block.start_pc if block is not None else None


def build_cfg(program: Program) -> CFG:
    """Construct the conservative CFG for ``program``."""
    blocks = program.basic_blocks
    label_blocks = tuple(
        sorted(
            {
                start
                for pc in program.labels.values()
                if (start := _block_start(program, pc)) is not None
            }
        )
    )
    return_sites = []
    for ins in program.instructions:
        if ins.uop_class is UopClass.BR_CALL or ins.opcode == "callr":
            site = _block_start(program, ins.fallthrough_pc)
            if site is not None:
                return_sites.append(site)
    return_sites_t = tuple(sorted(set(return_sites)))

    successors: dict[int, tuple[int, ...]] = {}
    indirect_blocks: set[int] = set()
    indirect_targets: set[int] = set()
    falls_off: set[int] = set()

    for start, block in blocks.items():
        term = program.instruction_at(block.end_pc)
        assert term is not None
        succs: list[int] = []
        cls = term.uop_class
        # Block leaders come from branch structure, so a ``halt`` can sit
        # mid-block (e.g. followed by trailing data-like code).  Execution
        # cannot pass it: the block then has no out-edges at all.
        if cls is not UopClass.HALT and any(
            ins is not None and ins.uop_class is UopClass.HALT
            for pc in block.pcs()
            if (ins := program.instruction_at(pc)) is not term
        ):
            successors[start] = ()
            continue

        def fallthrough() -> None:
            nxt = _block_start(program, term.fallthrough_pc)
            if nxt is None:
                falls_off.add(start)
            else:
                succs.append(nxt)

        if cls is UopClass.HALT:
            pass
        elif cls is UopClass.BR_COND:
            if term.target is not None:
                tgt = _block_start(program, term.target)
                if tgt is not None:
                    succs.append(tgt)
            fallthrough()
        elif cls in (UopClass.BR_JUMP, UopClass.BR_CALL):
            if term.target is not None:
                tgt = _block_start(program, term.target)
                if tgt is not None:
                    succs.append(tgt)
        elif cls is UopClass.BR_RET:
            indirect_blocks.add(start)
            succs.extend(return_sites_t)
        elif cls is UopClass.BR_IND:
            indirect_blocks.add(start)
            succs.extend(label_blocks)
            indirect_targets.update(label_blocks)
        else:
            fallthrough()
        # De-duplicate while preserving order.
        successors[start] = tuple(dict.fromkeys(succs))

    predecessors: dict[int, list[int]] = {start: [] for start in blocks}
    for start, succs in successors.items():
        for succ in succs:
            predecessors[succ].append(start)

    entry_block = program.block_containing(program.entry_pc)
    entry = entry_block.start_pc if entry_block is not None else program.entry_pc
    reachable: set[int] = set()
    work = [entry]
    while work:
        start = work.pop()
        if start in reachable:
            continue
        reachable.add(start)
        work.extend(successors.get(start, ()))

    return CFG(
        program=program,
        entry=entry,
        successors=successors,
        predecessors={s: tuple(p) for s, p in predecessors.items()},
        reachable=frozenset(reachable),
        indirect_blocks=frozenset(indirect_blocks),
        indirect_targets=frozenset(indirect_targets),
        return_sites=frozenset(return_sites_t),
        falls_off_end=frozenset(falls_off & reachable),
    )
