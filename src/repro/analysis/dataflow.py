"""Iterative dataflow analysis to fixpoint over the CFG.

Three classic analyses, all operating on the flat architectural
register space (the same indices the rename logic and the Backward
Dataflow Walk's Source List use):

* **Reaching definitions** — which instruction's write of a register
  (or of a memory location) can reach each use.  Register definitions
  are killed by redefinition; a synthetic *entry* definition per
  register models the architecturally zero-initialized state, so a use
  reached by it is a read of a register the program never wrote on some
  path (the linter's undefined-read rule).
* **Memory def-use with conservative may-alias** — memory locations
  are abstracted as ``(base register, offset)`` pairs.  Two locations
  *must* alias when the pair is identical, and *may* alias whenever the
  base registers differ (nothing is known about their runtime values);
  the single case provably distinct under this abstraction is the same
  base register with different offsets.  A store kills only must-alias
  stores; a load depends on every reaching may-alias store.
* **Liveness** — backward analysis over register use/def, used for the
  dead-store lint rule.

Everything is computed with bitsets (Python ints) over instruction
indices, so whole-program fixpoints on the largest workload kernels
take well under a millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import REG_ZERO
from ..isa.instructions import INSTRUCTION_BYTES, Instruction
from ..isa.program import Program
from ..isa.registers import NUM_ARCH_REGS
from .cfg import CFG, build_cfg


@dataclass(frozen=True)
class MemLoc:
    """Abstract memory location: base register + byte offset."""

    base: int
    offset: int

    def may_alias(self, other: "MemLoc") -> bool:
        """Conservative aliasing: only same-base/different-offset pairs
        are provably distinct."""
        if self.base == other.base:
            return self.offset == other.offset
        return True


def reg_uses(instr: Instruction) -> tuple[int, ...]:
    """Architectural registers read by ``instr`` (``r0`` excluded —
    it is hardwired zero, not a dataflow dependence)."""
    return tuple(r for r in instr.srcs if r != REG_ZERO)


def reg_def(instr: Instruction) -> int | None:
    """The architectural register written by ``instr``, if any
    (writes to ``r0`` are discarded by the machine)."""
    if instr.dst is None or instr.dst == REG_ZERO:
        return None
    return instr.dst


def mem_loc(instr: Instruction) -> MemLoc | None:
    """The abstract ``(base, offset)`` location of a memory op."""
    if instr.is_load:
        return MemLoc(instr.srcs[0], instr.imm or 0)
    if instr.is_store:
        return MemLoc(instr.srcs[1], instr.imm or 0)
    return None


@dataclass
class DataflowResult:
    """Def-use facts for one program, computed once to fixpoint."""

    program: Program
    cfg: CFG
    #: instruction index (position in ``program.instructions``) by PC.
    index_of: dict[int, int]
    #: per-instruction register def-use chains: for instruction ``i``,
    #: ``ud[i][r]`` holds the indices of instructions whose definition
    #: of register ``r`` may reach this use of ``r``.
    ud: list[dict[int, tuple[int, ...]]]
    #: per-load may-alias reaching stores: load index -> store indices.
    mem_ud: dict[int, tuple[int, ...]]
    #: ``(instruction index, register)`` uses reachable from entry that
    #: the synthetic uninitialized definition may reach.
    maybe_undefined: tuple[tuple[int, int], ...]
    #: ``(instruction index, register)`` definitions that are dead —
    #: no path uses the value before redefinition or program exit.
    dead_defs: tuple[tuple[int, int], ...]

    def instruction(self, index: int) -> Instruction:
        return self.program.instructions[index]


def analyze_dataflow(program: Program, cfg: CFG | None = None) -> DataflowResult:
    """Run all analyses over the reachable portion of ``program``."""
    cfg = cfg or build_cfg(program)
    instrs = program.instructions
    n = len(instrs)
    index_of = {ins.pc: i for i, ins in enumerate(instrs)}

    # --- definition id space: [0, n) instruction defs, [n, n+regs)
    # synthetic per-register entry defs.
    defs_by_reg: list[int] = [1 << (n + r) for r in range(NUM_ARCH_REGS)]
    store_locs: dict[int, MemLoc] = {}
    for i, ins in enumerate(instrs):
        dst = reg_def(ins)
        if dst is not None:
            defs_by_reg[dst] |= 1 << i
        if ins.is_store:
            loc = mem_loc(ins)
            assert loc is not None
            store_locs[i] = loc
    must_alias_mask: dict[MemLoc, int] = {}
    may_alias_mask: dict[MemLoc, int] = {}
    for i, loc in store_locs.items():
        must_alias_mask[loc] = must_alias_mask.get(loc, 0) | (1 << i)
    distinct_locs = set(store_locs.values())
    for loc in distinct_locs:
        mask = 0
        for i, other in store_locs.items():
            if loc.may_alias(other):
                mask |= 1 << i
        may_alias_mask[loc] = mask

    blocks = cfg.program.basic_blocks
    reachable = sorted(cfg.reachable)

    # --- per-block gen/kill for reaching definitions -------------------
    gen: dict[int, int] = {}
    kill: dict[int, int] = {}
    for start in reachable:
        block = blocks[start]
        g = 0
        k = 0
        for pc in block.pcs():
            i = index_of[pc]
            ins = instrs[i]
            dst = reg_def(ins)
            if dst is not None:
                mask = defs_by_reg[dst]
                k |= mask
                g = (g & ~mask) | (1 << i)
            elif ins.is_store:
                mask = must_alias_mask[store_locs[i]]
                k |= mask
                g = (g & ~mask) | (1 << i)
        gen[start] = g
        kill[start] = k

    entry_defs = 0
    for r in range(NUM_ARCH_REGS):
        entry_defs |= 1 << (n + r)

    rd_in: dict[int, int] = {start: 0 for start in reachable}
    rd_out: dict[int, int] = {
        start: gen[start] | (entry_defs if start == cfg.entry else 0)
        for start in reachable
    }
    rd_in[cfg.entry] = entry_defs
    rd_out[cfg.entry] = gen[cfg.entry] | (entry_defs & ~kill[cfg.entry])
    work = list(reachable)
    while work:
        start = work.pop()
        in_set = entry_defs if start == cfg.entry else 0
        for pred in cfg.predecessors.get(start, ()):
            if pred in rd_out:
                in_set |= rd_out[pred]
        out_set = gen[start] | (in_set & ~kill[start])
        rd_in[start] = in_set
        if out_set != rd_out[start]:
            rd_out[start] = out_set
            for succ in cfg.successors.get(start, ()):
                if succ in rd_in and succ not in work:
                    work.append(succ)

    # --- per-instruction use-def chains --------------------------------
    instr_mask = (1 << n) - 1
    ud: list[dict[int, tuple[int, ...]]] = [{} for _ in range(n)]
    mem_ud: dict[int, tuple[int, ...]] = {}
    maybe_undefined: list[tuple[int, int]] = []
    for start in reachable:
        block = blocks[start]
        current = rd_in[start]
        for pc in block.pcs():
            i = index_of[pc]
            ins = instrs[i]
            for r in reg_uses(ins):
                reaching = current & defs_by_reg[r]
                if reaching >> (n + r) & 1:
                    maybe_undefined.append((i, r))
                defs = reaching & instr_mask
                if defs:
                    ud[i][r] = _bits(defs)
            if ins.is_load:
                loc = mem_loc(ins)
                assert loc is not None
                mask = 0
                for other, other_mask in must_alias_mask.items():
                    if loc.may_alias(other):
                        mask |= other_mask
                stores = current & mask
                if stores:
                    mem_ud[i] = _bits(stores)
            dst = reg_def(ins)
            if dst is not None:
                current = (current & ~defs_by_reg[dst]) | (1 << i)
            elif ins.is_store:
                current = (current & ~must_alias_mask[store_locs[i]]) | (1 << i)

    # --- liveness (backward) -------------------------------------------
    use_b: dict[int, int] = {}
    def_b: dict[int, int] = {}
    for start in reachable:
        block = blocks[start]
        used = 0
        defined = 0
        for pc in block.pcs():
            ins = instrs[index_of[pc]]
            for r in reg_uses(ins):
                if not (defined >> r) & 1:
                    used |= 1 << r
            dst = reg_def(ins)
            if dst is not None:
                defined |= 1 << dst
        use_b[start] = used
        def_b[start] = defined

    live_in: dict[int, int] = {start: use_b[start] for start in reachable}
    live_out: dict[int, int] = {start: 0 for start in reachable}
    changed = True
    while changed:
        changed = False
        for start in reversed(reachable):
            out = 0
            for succ in cfg.successors.get(start, ()):
                if succ in live_in:
                    out |= live_in[succ]
            inn = use_b[start] | (out & ~def_b[start])
            if out != live_out[start] or inn != live_in[start]:
                live_out[start] = out
                live_in[start] = inn
                changed = True

    dead_defs: list[tuple[int, int]] = []
    for start in reachable:
        block = blocks[start]
        live = live_out[start]
        for pc in range(block.end_pc, block.start_pc - 1, -INSTRUCTION_BYTES):
            i = index_of[pc]
            ins = instrs[i]
            dst = reg_def(ins)
            if dst is not None:
                if not (live >> dst) & 1 and not ins.is_branch:
                    # Calls (dst = ra) are control flow with their own
                    # liveness story; only data definitions are flagged.
                    dead_defs.append((i, dst))
                live &= ~(1 << dst)
            for r in reg_uses(ins):
                live |= 1 << r

    return DataflowResult(
        program=program,
        cfg=cfg,
        index_of=index_of,
        ud=ud,
        mem_ud=mem_ud,
        maybe_undefined=tuple(maybe_undefined),
        dead_defs=tuple(dead_defs),
    )


def _bits(mask: int) -> tuple[int, ...]:
    """Indices of the set bits of ``mask``, ascending."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)
