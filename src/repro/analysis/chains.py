"""Static precomputation chains: construction, classification, soundness.

TEA discovers the dataflow chain feeding each H2P branch *dynamically*
(Fill Buffer sampling + Backward Dataflow Walk).  This module builds
the same chains *statically* on top of the PR 4 CFG/dataflow/slicer and
uses them three ways:

1. **Chain construction** — every conditional branch's backward slice
   is condensed into a :class:`StaticChain`: the chain uop set and
   Block Cache-shaped masks, live-in registers and memory locations,
   the maximum dataflow depth (longest path over the SCC-condensed
   dependence graph, so loop-carried induction cycles are handled),
   and a critical-path latency from the ISA class latencies.
2. **Branch classification** — the static analogue of the Constantinou
   et al. pre-screen: interval analysis (constant propagation with
   widening) proves some branches one-sided or loop exits with a known
   trip count (``trivially-predictable``); slices that close within
   the depth/size/load budgets are ``chainable``; indirect-dependent
   or over-budget slices are ``unchainable``.  The chainable set is
   exported as a per-branch allow mask for
   :attr:`~repro.tea.config.TeaConfig.branch_mask`.
3. **Runtime soundness oracle** — every Backward Dataflow Walk is
   replayed per initiating branch (the ``walk_done`` firehose) and
   checked against the static chain: marked uops must lie inside the
   slice, dynamically-observed live-in registers must be covered by
   the static live-ins (or produced inside the slice — the Fill Buffer
   window truncates chains), and the dynamic dataflow depth must stay
   within the static bound.  Violations are structured
   :class:`ChainUnsound` findings (``chain_unsound`` events, CI-gated
   to zero on the pinned matrix).

A **timeliness cost model** scores each loop branch statically: the
shadow frontend sees the next iteration roughly one loop of fetch
ahead, so a chain is timely when its critical-path latency fits inside
``frontend_delay + loop_length / fetch_width``.  The verdicts are
reconciled against the measured ``tea_report`` lead times by
:func:`run_chain_oracle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Iterable

from ..isa import REG_ZERO
from ..isa.instructions import CLASS_LATENCY, Instruction
from ..isa.program import Program
from ..isa.registers import NUM_ARCH_REGS
from ..obs.events import EventBus
from ..tea.config import TeaConfig
from ..tea.fill_buffer import FillEntry, backward_dataflow_walk
from .cfg import CFG
from .dataflow import DataflowResult, MemLoc, mem_loc, reg_def, reg_uses
from .oracle import WalkCapture
from .slicer import ProgramSlices, slice_program

CLASS_TRIVIAL = "trivially-predictable"
CLASS_CHAINABLE = "chainable"
CLASS_UNCHAINABLE = "unchainable"

#: Bounded-iteration cap for the static trip-count evaluation; loops
#: that do not close within this many iterations (wrong step direction,
#: zero step) report an unknown trip count.
_TRIP_COUNT_CAP = 1 << 20

#: Widening threshold: joins per block before changing bounds go to
#: +/-infinity (guarantees the interval fixpoint terminates).
_WIDEN_AFTER = 4


@dataclass(frozen=True)
class ChainBudgets:
    """Resource budgets separating chainable from unchainable slices."""

    #: Maximum chain size (static uops in the slice, branch included).
    max_uops: int = 64
    #: Maximum dataflow depth (longest SCC-condensed dependence path).
    max_depth: int = 24
    #: Maximum loads on any dependence path (pointer-chase cutoff).
    max_load_depth: int = 4
    #: Modeled load-to-use latency for the cost model (L1 hit; the
    #: LOAD class latency only covers address generation).
    load_latency: int = 4


# ----------------------------------------------------------------------
# Interval analysis (constant / value-range propagation)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds are unbounded."""

    lo: int | None
    hi: int | None

    @property
    def is_singleton(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def hull(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic widening: a moving bound jumps straight to infinity."""
        lo = self.lo
        if newer.lo is None or (lo is not None and newer.lo < lo):
            lo = None
        hi = self.hi
        if newer.hi is None or (hi is not None and newer.hi > hi):
            hi = None
        return Interval(lo, hi)


TOP = Interval(None, None)
ZERO = Interval(0, 0)
BIT = Interval(0, 1)


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _sub(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.hi is None else a.lo - b.hi
    hi = None if a.hi is None or b.lo is None else a.hi - b.lo
    return Interval(lo, hi)


def _transfer(env: list[Interval], instr: Instruction) -> None:
    """Abstract semantics of one instruction over the register file.

    Only the integer ops the workloads use for loop control get precise
    transfer functions; everything else (loads, FP, divisions, ...)
    conservatively produces ``TOP``.
    """
    dst = instr.dst
    if dst is None or dst == REG_ZERO:
        return
    op = instr.opcode
    srcs = instr.srcs

    def src(i: int) -> Interval:
        r = srcs[i]
        return ZERO if r == REG_ZERO else env[r]

    imm = instr.imm or 0
    value = TOP
    if op == "li":
        value = Interval(imm, imm)
    elif op == "mov":
        value = src(0)
    elif op == "addi":
        value = _add(src(0), Interval(imm, imm))
    elif op == "subi":
        value = _sub(src(0), Interval(imm, imm))
    elif op == "add":
        value = _add(src(0), src(1))
    elif op == "sub":
        value = _sub(src(0), src(1))
    elif op in ("slt", "sltu", "slti", "fcmplt"):
        value = BIT
    elif op == "andi" and imm >= 0:
        value = Interval(0, imm)
    elif op == "min":
        a, b = src(0), src(1)
        lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
        hi = None if a.hi is None or b.hi is None else min(a.hi, b.hi)
        value = Interval(lo, hi)
    elif op == "max":
        a, b = src(0), src(1)
        lo = None if a.lo is None or b.lo is None else max(a.lo, b.lo)
        hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
        value = Interval(lo, hi)
    elif op in ("mul", "shli", "shri", "andi", "ori", "xori"):
        a = src(0)
        b = Interval(imm, imm) if op.endswith("i") else src(1)
        if a.is_singleton and b.is_singleton:
            assert a.lo is not None and b.lo is not None
            if op == "mul":
                v = a.lo * b.lo
            elif op == "shli":
                v = a.lo << b.lo
            elif op == "shri":
                v = a.lo >> b.lo
            elif op == "andi":
                v = a.lo & b.lo
            elif op == "ori":
                v = a.lo | b.lo
            else:
                v = a.lo ^ b.lo
            value = Interval(v, v)
    env[dst] = value


def _branch_environments(cfg: CFG) -> dict[int, list[Interval]]:
    """Register intervals holding immediately before each conditional
    branch, from a flow-sensitive fixpoint with widening.

    The entry state is all-zero (the machine's registers are
    architecturally zero-initialized, matching the dataflow module's
    synthetic entry definitions).
    """
    program = cfg.program
    blocks = cfg.blocks
    reachable = sorted(cfg.reachable)
    in_states: dict[int, list[Interval]] = {}
    join_counts: dict[int, int] = {}
    in_states[cfg.entry] = [ZERO] * NUM_ARCH_REGS

    def flow(start: int) -> list[Interval]:
        env = list(in_states[start])
        for pc in blocks[start].pcs():
            ins = program.instruction_at(pc)
            assert ins is not None
            _transfer(env, ins)
        return env

    work = [cfg.entry]
    on_work = {cfg.entry}
    while work:
        start = work.pop()
        on_work.discard(start)
        out = flow(start)
        for succ in cfg.successors.get(start, ()):
            if succ not in cfg.reachable:
                continue
            old = in_states.get(succ)
            if old is None:
                in_states[succ] = list(out)
                changed = True
            else:
                joined = [o.hull(n) for o, n in zip(old, out)]
                if join_counts.get(succ, 0) >= _WIDEN_AFTER:
                    joined = [o.widen(j) for o, j in zip(old, joined)]
                changed = joined != old
                if changed:
                    join_counts[succ] = join_counts.get(succ, 0) + 1
                    in_states[succ] = joined
            if changed and succ not in on_work:
                work.append(succ)
                on_work.add(succ)

    envs: dict[int, list[Interval]] = {}
    for start in reachable:
        if start not in in_states:
            continue
        term = cfg.terminator(start)
        if not term.is_conditional:
            continue
        env = list(in_states[start])
        for pc in blocks[start].pcs():
            ins = program.instruction_at(pc)
            assert ins is not None
            if ins is term:
                break
            _transfer(env, ins)
        envs[term.pc] = env
    return envs


def _compare(op: str, a: Interval, b: Interval) -> bool | None:
    """Decide ``op(a, b)`` over intervals: True/False if provable."""
    disjoint = (
        a.hi is not None and b.lo is not None and a.hi < b.lo
    ) or (b.hi is not None and a.lo is not None and b.hi < a.lo)
    if op == "beq":
        if a.is_singleton and b.is_singleton and a.lo == b.lo:
            return True
        return False if disjoint else None
    if op == "bne":
        if disjoint:
            return True
        if a.is_singleton and b.is_singleton and a.lo == b.lo:
            return False
        return None
    if op == "blt":
        if a.hi is not None and b.lo is not None and a.hi < b.lo:
            return True
        if a.lo is not None and b.hi is not None and a.lo >= b.hi:
            return False
        return None
    if op == "ble":
        if a.hi is not None and b.lo is not None and a.hi <= b.lo:
            return True
        if a.lo is not None and b.hi is not None and a.lo > b.hi:
            return False
        return None
    if op == "bge":
        inverse = _compare("blt", a, b)
        return None if inverse is None else not inverse
    if op == "bgt":
        inverse = _compare("ble", a, b)
        return None if inverse is None else not inverse
    return None


def _holds(op: str, a: int, b: int) -> bool:
    if op == "beq":
        return a == b
    if op == "bne":
        return a != b
    if op == "blt":
        return a < b
    if op == "ble":
        return a <= b
    if op == "bge":
        return a >= b
    if op == "bgt":
        return a > b
    raise ValueError(f"not a conditional opcode: {op!r}")


# ----------------------------------------------------------------------
# Dependence graph machinery (SCC condensation + weighted longest path)
# ----------------------------------------------------------------------

def _tarjan_sccs(
    nodes: list[int], edges: dict[int, list[int]]
) -> list[list[int]]:
    """Iterative Tarjan; SCCs come out in reverse topological order
    (every SCC is emitted before its predecessors)."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        call: list[tuple[int, int]] = [(root, 0)]
        while call:
            node, child_i = call.pop()
            if child_i == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = edges.get(node, [])
            for k in range(child_i, len(succs)):
                succ = succs[k]
                if succ not in index:
                    call.append((node, k + 1))
                    call.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if call:
                parent = call[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _condensed_longest_paths(
    nodes: list[int],
    edges: dict[int, list[int]],
    weight: dict[int, int],
) -> tuple[dict[int, int], dict[int, int], list[list[int]]]:
    """Longest weighted path *ending at* each node's SCC.

    Node weights are summed per SCC (a loop-carried dependence cycle
    counts once, with its full weight).  Returns ``(dist_by_node,
    comp_by_node, sccs)`` where ``dist_by_node[n]`` is the heaviest
    condensed path ending at ``n``'s component.
    """
    sccs = _tarjan_sccs(nodes, edges)
    comp: dict[int, int] = {}
    for cid, scc in enumerate(sccs):
        for node in scc:
            comp[node] = cid
    comp_weight = [sum(weight.get(n, 1) for n in scc) for scc in sccs]
    preds: dict[int, set[int]] = {}
    for u in nodes:
        for v in edges.get(u, []):
            cu, cv = comp[u], comp[v]
            if cu != cv:
                preds.setdefault(cv, set()).add(cu)
    # Tarjan order is reverse-topological, so descending component id
    # walks sources -> sinks; every predecessor (higher id) is final
    # by the time its successor is processed.
    dist = [0] * len(sccs)
    for cid in range(len(sccs) - 1, -1, -1):
        best = 0
        for p in preds.get(cid, ()):
            if dist[p] > best:
                best = dist[p]
        dist[cid] = best + comp_weight[cid]
    return {n: dist[comp[n]] for n in nodes}, comp, sccs


def _shortest_cycle_instrs(cfg: CFG, start: int) -> int | None:
    """Instructions on the shortest CFG cycle through block ``start``
    (``None`` when the block is not on any cycle)."""
    sizes = {s: len(list(b.pcs())) for s, b in cfg.blocks.items()}
    succ = cfg.successors
    if start in succ.get(start, ()):
        return sizes[start]
    dist: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    for s in succ.get(start, ()):
        if s == start or s not in cfg.reachable:
            continue
        d = sizes[s]
        if d < dist.get(s, 1 << 60):
            dist[s] = d
            heappush(heap, (d, s))
    best: int | None = None
    while heap:
        d, node = heappop(heap)
        if d > dist.get(node, 1 << 60):
            continue
        for s in succ.get(node, ()):
            if s == start:
                if best is None or d < best:
                    best = d
                continue
            nd = d + sizes[s]
            if nd < dist.get(s, 1 << 60):
                dist[s] = nd
                heappush(heap, (nd, s))
    return None if best is None else best + sizes[start]


# ----------------------------------------------------------------------
# Static chains
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StaticChain:
    """The static precomputation chain of one conditional branch."""

    branch_pc: int
    line: int | None
    #: Chain membership (the branch's backward slice, branch included).
    pcs: frozenset[int]
    #: Block Cache-shaped masks (block start -> instruction bit-mask).
    masks: dict[int, int] = field(compare=False)
    #: Dependence edges inside the chain: producer PC -> consumer PCs.
    edges: dict[int, tuple[int, ...]] = field(compare=False)
    #: Registers the chain reads from outside itself (its live-ins).
    live_in_regs: frozenset[int]
    #: Registers written by chain instructions.
    written_regs: frozenset[int]
    #: Abstract locations of chain loads whose producing store is
    #: outside the chain (or statically unknown).
    mem_live_ins: tuple[MemLoc, ...]
    #: Longest dependence path, in instructions, over the SCC-condensed
    #: chain graph ending at the branch (loop-carried cycles count once
    #: with their full size) — the sound upper bound for any dynamic
    #: walk restricted to distinct chain PCs.
    depth: int
    #: Loads on the heaviest load path (pointer-chase depth).
    load_depth: int
    #: Critical-path issue latency of the chain (cycles), loads charged
    #: the modeled load-to-use latency.
    latency: int
    #: Registers updated by a simple induction (an ``addi``/``subi``
    #: self-cycle in the chain's dependence graph).
    induction_regs: frozenset[int]
    has_indirect: bool
    through_memory: bool
    #: Interval analysis proved the branch always/never taken.
    one_sided: bool
    #: Constant trip count for a recognized induction loop exit.
    trip_count: int | None
    #: Instructions on the shortest CFG cycle through the branch's
    #: block (``None`` for non-loop branches).
    loop_length: int | None
    #: Static timeliness verdict (``None`` for non-loop branches).
    timely: bool | None
    #: Modeled lead: available cycles minus chain latency.
    lead_estimate: int | None
    classification: str
    reason: str

    @property
    def size(self) -> int:
        return len(self.pcs)

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-safe record (mask keys hex-encoded)."""
        return {
            "pc": self.branch_pc,
            "line": self.line,
            "size": self.size,
            "depth": self.depth,
            "load_depth": self.load_depth,
            "latency": self.latency,
            "live_in_regs": sorted(self.live_in_regs),
            "mem_live_ins": [
                {"base": m.base, "offset": m.offset} for m in self.mem_live_ins
            ],
            "induction_regs": sorted(self.induction_regs),
            "has_indirect": self.has_indirect,
            "through_memory": self.through_memory,
            "one_sided": self.one_sided,
            "trip_count": self.trip_count,
            "loop_length": self.loop_length,
            "timely": self.timely,
            "lead_estimate": self.lead_estimate,
            "classification": self.classification,
            "reason": self.reason,
            "masks": {f"{s:#x}": m for s, m in sorted(self.masks.items())},
        }


@dataclass
class ProgramChains:
    """Every conditional branch's static chain for one program."""

    program: Program
    cfg: CFG
    dataflow: DataflowResult
    slices: ProgramSlices
    budgets: ChainBudgets
    chains: dict[int, StaticChain]

    def chain_at(self, pc: int) -> StaticChain | None:
        return self.chains.get(pc)

    def counts(self) -> dict[str, int]:
        out = {CLASS_TRIVIAL: 0, CLASS_CHAINABLE: 0, CLASS_UNCHAINABLE: 0}
        for chain in self.chains.values():
            out[chain.classification] += 1
        return out

    def allow_mask(self) -> tuple[int, ...]:
        """Branch PCs the TEA controller should spend chain slots on —
        the value for :attr:`TeaConfig.branch_mask`."""
        return tuple(
            sorted(
                pc
                for pc, chain in self.chains.items()
                if chain.classification == CLASS_CHAINABLE
            )
        )


def _trip_count(
    df: DataflowResult, branch: Instruction, envs: list[Interval]
) -> int | None:
    """Constant trip count of a recognized bottom-tested counted loop.

    The pattern is deliberately narrow so the claim is exact: the
    branch compares an induction register against a register whose
    interval is a compile-time singleton; the induction register's sole
    reaching definition is an ``addi``/``subi`` self-update *in the
    branch's own basic block* (so it executes exactly once per branch
    execution), initialized by a single ``li``.  The branch outcome
    sequence is then fully determined and its run length is evaluated
    directly (capped, so diverging loops report ``None``).
    """
    srcs = branch.srcs
    if len(srcs) != 2:
        return None
    program = df.program
    branch_block = program.block_containing(branch.pc)
    if branch_block is None:
        return None
    for var_pos in (0, 1):
        var = srcs[var_pos]
        bound_reg = srcs[1 - var_pos]
        bound_iv = ZERO if bound_reg == REG_ZERO else envs[bound_reg]
        if not bound_iv.is_singleton or var == REG_ZERO:
            continue
        assert bound_iv.lo is not None
        branch_i = df.index_of[branch.pc]
        defs = df.ud[branch_i].get(var)
        if defs is None or len(defs) != 1:
            continue
        d = defs[0]
        update = df.instruction(d)
        if update.opcode not in ("addi", "subi"):
            continue
        if update.srcs != (var,) or update.dst != var:
            continue
        if program.block_containing(update.pc) is not branch_block:
            continue
        if update.pc >= branch.pc:
            continue
        step = update.imm or 0
        if update.opcode == "subi":
            step = -step
        if step == 0:
            continue
        inits = [i for i in df.ud[d].get(var, ()) if i != d]
        if len(inits) != 1:
            continue
        init = df.instruction(inits[0])
        if init.opcode != "li":
            continue
        v = (init.imm or 0) + step
        bound = bound_iv.lo
        # Count how long the first branch outcome repeats; a constant
        # run length makes the branch trivially predictable.
        first = _holds(branch.opcode, *((v, bound) if var_pos == 0 else (bound, v)))
        count = 0
        while True:
            a, b = (v, bound) if var_pos == 0 else (bound, v)
            if _holds(branch.opcode, a, b) != first:
                return count
            count += 1
            if count > _TRIP_COUNT_CAP:
                return None
            v += step
    return None


def analyze_chains(
    program: Program,
    config: TeaConfig | None = None,
    budgets: ChainBudgets | None = None,
    slices: ProgramSlices | None = None,
) -> ProgramChains:
    """Build and classify the static chain of every conditional branch."""
    cfg_tea = config or TeaConfig()
    budgets = budgets or ChainBudgets()
    slices = slices or slice_program(program)
    df = slices.dataflow
    cfg = slices.cfg
    instrs = program.instructions
    envs_by_branch = _branch_environments(cfg)

    chains: dict[int, StaticChain] = {}
    loop_cache: dict[int, int | None] = {}
    for branch_pc, sl in slices.branches.items():
        branch_i = df.index_of[branch_pc]
        branch = instrs[branch_i]
        members = sorted(df.index_of[pc] for pc in sl.pcs)
        member_set = set(members)

        # Dependence edges (producer -> consumer) inside the slice.
        edges: dict[int, list[int]] = {}
        for i in members:
            for defs in df.ud[i].values():
                for d in defs:
                    if d in member_set:
                        edges.setdefault(d, []).append(i)
            for s in df.mem_ud.get(i, ()):
                if s in member_set:
                    edges.setdefault(s, []).append(i)
        for producer in edges:
            edges[producer] = sorted(set(edges[producer]))

        ones = {i: 1 for i in members}
        load_w = {i: (1 if instrs[i].is_load else 0) for i in members}
        lat_w = {
            i: CLASS_LATENCY[instrs[i].uop_class]
            + (budgets.load_latency if instrs[i].is_load else 0)
            for i in members
        }
        depth_by_node, comp, sccs = _condensed_longest_paths(members, edges, ones)
        load_by_node, _, _ = _condensed_longest_paths(members, edges, load_w)
        lat_by_node, _, _ = _condensed_longest_paths(members, edges, lat_w)
        depth = depth_by_node[branch_i]
        load_depth = load_by_node[branch_i]
        latency = lat_by_node[branch_i]

        induction: set[int] = set()
        for scc in sccs:
            if all(
                instrs[i].opcode in ("addi", "subi", "add", "sub", "mov")
                for i in scc
            ) and (len(scc) > 1 or scc[0] in edges.get(scc[0], [])):
                for i in scc:
                    r = reg_def(instrs[i])
                    if r is not None:
                        induction.add(r)

        # Live-ins: uses whose reaching definitions are not all inside
        # the slice (including the synthetic zero-initialized entry
        # state, which has no instruction index at all).
        live_in: set[int] = set()
        written: set[int] = set()
        mem_live: list[MemLoc] = []
        undefined = set(df.maybe_undefined)
        for i in members:
            ins = instrs[i]
            r_def = reg_def(ins)
            if r_def is not None:
                written.add(r_def)
            for r in reg_uses(ins):
                defs = df.ud[i].get(r, ())
                if (
                    not defs
                    or any(d not in member_set for d in defs)
                    or (i, r) in undefined
                ):
                    live_in.add(r)
            if ins.is_load:
                stores = df.mem_ud.get(i, ())
                if not stores or any(s not in member_set for s in stores):
                    loc = mem_loc(ins)
                    assert loc is not None
                    mem_live.append(loc)

        envs = envs_by_branch.get(branch_pc)
        one_sided = False
        trip_count: int | None = None
        if envs is not None:
            a = ZERO if branch.srcs[0] == REG_ZERO else envs[branch.srcs[0]]
            b = ZERO if branch.srcs[1] == REG_ZERO else envs[branch.srcs[1]]
            one_sided = _compare(branch.opcode, a, b) is not None
            if not one_sided:
                trip_count = _trip_count(df, branch, envs)

        block = program.block_containing(branch_pc)
        assert block is not None
        start = block.start_pc
        if start not in loop_cache:
            loop_cache[start] = _shortest_cycle_instrs(cfg, start)
        loop_length = loop_cache[start]
        timely: bool | None = None
        lead_estimate: int | None = None
        if loop_length is not None:
            available = cfg_tea.frontend_delay + -(
                -loop_length // cfg_tea.fetch_width
            )
            lead_estimate = available - latency
            timely = lead_estimate > 0

        if sl.has_indirect:
            classification, reason = (
                CLASS_UNCHAINABLE,
                "slice crosses indirect control flow",
            )
        elif one_sided:
            classification, reason = (
                CLASS_TRIVIAL,
                "range analysis proves the branch one-sided",
            )
        elif trip_count is not None:
            classification, reason = (
                CLASS_TRIVIAL,
                f"counted loop exit (trip count {trip_count})",
            )
        elif len(members) > budgets.max_uops:
            classification, reason = (
                CLASS_UNCHAINABLE,
                f"slice size {len(members)} exceeds budget {budgets.max_uops}",
            )
        elif load_depth > budgets.max_load_depth:
            classification, reason = (
                CLASS_UNCHAINABLE,
                f"load chain depth {load_depth} exceeds budget "
                f"{budgets.max_load_depth}",
            )
        elif depth > budgets.max_depth:
            classification, reason = (
                CLASS_UNCHAINABLE,
                f"dataflow depth {depth} exceeds budget {budgets.max_depth}",
            )
        else:
            classification, reason = CLASS_CHAINABLE, "slice closes within budgets"

        pc_edges = {
            instrs[p].pc: tuple(instrs[c].pc for c in consumers)
            for p, consumers in edges.items()
        }
        chains[branch_pc] = StaticChain(
            branch_pc=branch_pc,
            line=branch.line,
            pcs=sl.pcs,
            masks=dict(sl.masks),
            edges=pc_edges,
            live_in_regs=frozenset(live_in),
            written_regs=frozenset(written),
            mem_live_ins=tuple(mem_live),
            depth=depth,
            load_depth=load_depth,
            latency=latency,
            induction_regs=frozenset(induction),
            has_indirect=sl.has_indirect,
            through_memory=sl.through_memory,
            one_sided=one_sided,
            trip_count=trip_count,
            loop_length=loop_length,
            timely=timely,
            lead_estimate=lead_estimate,
            classification=classification,
            reason=reason,
        )
    return ProgramChains(
        program=program,
        cfg=cfg,
        dataflow=df,
        slices=slices,
        budgets=budgets,
        chains=chains,
    )


# ----------------------------------------------------------------------
# Runtime soundness oracle
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ChainUnsound:
    """One runtime chain that escaped its static bound."""

    branch_pc: int
    #: ``uop_not_in_slice`` | ``live_in_uncovered`` | ``depth_exceeded``
    kind: str
    detail: dict[str, Any] = field(compare=False)

    def as_dict(self) -> dict[str, Any]:
        return {"pc": self.branch_pc, "kind": self.kind, **self.detail}


def check_chain(
    chain: StaticChain,
    entries: list[FillEntry],
    marked: list[bool],
) -> list[ChainUnsound]:
    """Check one attributed dynamic chain against its static chain.

    ``marked`` flags the Fill Buffer entries the walk attributed to
    ``chain.branch_pc`` (entries are in retirement order, oldest
    first).  Three independent soundness obligations:

    * every marked PC lies inside the static slice;
    * every dynamically live-in register (read before any older marked
      entry produced it) is a static live-in *or* produced by the
      slice — the Fill Buffer window may truncate the chain's prefix;
    * the dynamic dataflow depth over distinct marked PCs stays within
      the static SCC-condensed bound.
    """
    findings: list[ChainUnsound] = []
    marked_pcs: set[int] = set()
    produced: set[int] = set()
    dyn_live: set[int] = set()
    for entry, flag in zip(entries, marked):
        if not flag:
            continue
        marked_pcs.add(entry.pc)
        for r in entry.srcs:
            if r != REG_ZERO and r not in produced:
                dyn_live.add(r)
        if entry.dst is not None:
            produced.add(entry.dst)

    extra = marked_pcs - chain.pcs
    if extra:
        findings.append(
            ChainUnsound(
                branch_pc=chain.branch_pc,
                kind="uop_not_in_slice",
                detail={"pcs": sorted(extra)},
            )
        )
    uncovered = dyn_live - chain.live_in_regs - chain.written_regs
    if uncovered:
        findings.append(
            ChainUnsound(
                branch_pc=chain.branch_pc,
                kind="live_in_uncovered",
                detail={"regs": sorted(uncovered)},
            )
        )
    inside = sorted(marked_pcs & chain.pcs)
    if inside:
        sub_edges = {
            p: [c for c in consumers if c in marked_pcs]
            for p, consumers in chain.edges.items()
            if p in marked_pcs
        }
        dist, _, _ = _condensed_longest_paths(
            inside, sub_edges, {pc: 1 for pc in inside}
        )
        dyn_depth = max(dist.values())
        if dyn_depth > chain.depth:
            findings.append(
                ChainUnsound(
                    branch_pc=chain.branch_pc,
                    kind="depth_exceeded",
                    detail={"dynamic": dyn_depth, "static": chain.depth},
                )
            )
    return findings


def verify_walks(
    chains: ProgramChains,
    walks: Iterable[tuple[list[FillEntry], Any]],
    config: TeaConfig,
    bus: EventBus | None = None,
) -> dict[str, Any]:
    """Replay every walk per initiating branch and verify soundness.

    Walks initiated by branches without a static chain (indirect
    branches — ``ret``/``jr`` are H2P-eligible but not conditional)
    are counted as skipped, not unsound.
    """
    findings: list[ChainUnsound] = []
    checked: dict[int, int] = {}
    skipped_no_slice = 0
    walk_count = 0
    for entries, _result in walks:
        walk_count += 1
        initiators = {e.pc for e in entries if e.is_h2p_branch}
        for pc in sorted(initiators):
            chain = chains.chain_at(pc)
            if chain is None:
                skipped_no_slice += 1
                continue
            replay = backward_dataflow_walk(entries, config, initiator_pc=pc)
            if not any(replay.marked):
                continue
            checked[pc] = checked.get(pc, 0) + 1
            for finding in check_chain(chain, entries, replay.marked):
                findings.append(finding)
                if bus is not None:
                    bus.emit("chain_unsound", pc=pc, **{
                        k: v for k, v in finding.as_dict().items() if k != "pc"
                    })
    if bus is not None:
        for pc in sorted(checked):
            bus.emit(
                "chain_oracle",
                pc=pc,
                walks=checked[pc],
                unsound=sum(1 for f in findings if f.branch_pc == pc),
            )
    return {
        "findings": [f.as_dict() for f in findings],
        "unsound_total": len(findings),
        "branches_checked": len(checked),
        "walks_checked": sum(checked.values()),
        "walks_captured": walk_count,
        "skipped_no_slice": skipped_no_slice,
    }


# ----------------------------------------------------------------------
# Timeliness reconciliation + CLI/CI driver
# ----------------------------------------------------------------------

def reconcile_timeliness(
    chains: ProgramChains,
    leads_by_pc: dict[int, list[int]],
    min_samples: int = 10,
) -> dict[str, Any]:
    """Compare static timely/untimely verdicts with measured leads.

    A branch is *measured timely* when at least half of its observed
    lead times are positive (the ``tea_report`` convention: positive
    lead = resolved before the main branch's fetch).  Only branches
    with a static verdict (loop branches) and ``min_samples`` measured
    resolutions participate.
    """
    rows: list[dict[str, Any]] = []
    agree = 0
    for pc, leads in sorted(leads_by_pc.items()):
        chain = chains.chain_at(pc)
        if chain is None or chain.timely is None or len(leads) < min_samples:
            continue
        timely_frac = sum(1 for lead in leads if lead > 0) / len(leads)
        measured = timely_frac >= 0.5
        matches = measured == chain.timely
        agree += matches
        rows.append(
            {
                "pc": pc,
                "samples": len(leads),
                "measured_timely": measured,
                "measured_fraction": timely_frac,
                "static_timely": chain.timely,
                "lead_estimate": chain.lead_estimate,
                "agree": matches,
            }
        )
    return {
        "branches": rows,
        "compared": len(rows),
        "agreement": (agree / len(rows)) if rows else None,
    }


def build_chain_report(
    chains: ProgramChains, workload: str | None = None
) -> dict[str, Any]:
    """JSON-safe static report (``repro chains``)."""
    return {
        "workload": workload,
        "counts": chains.counts(),
        "conditional_branches": len(chains.chains),
        "allow_mask": list(chains.allow_mask()),
        "budgets": {
            "max_uops": chains.budgets.max_uops,
            "max_depth": chains.budgets.max_depth,
            "max_load_depth": chains.budgets.max_load_depth,
            "load_latency": chains.budgets.load_latency,
        },
        "branches": [
            chain.as_dict() for _, chain in sorted(chains.chains.items())
        ],
    }


def run_chain_oracle(
    workload: str,
    scale: str = "tiny",
    mode: str = "tea",
    use_mask: bool = False,
) -> dict[str, Any]:
    """Run one workload under a TEA mode and verify every chain.

    Returns the static report extended with the runtime soundness
    verdicts and the timeliness reconciliation.  With ``use_mask`` the
    run itself consults the static allow mask (chainable branches
    only).  Harness imports are function-level: the analysis layer sits
    below the harness and only this entry point drives a simulation.
    """
    from dataclasses import replace

    from ..harness.runner import make_config, run_workload
    from ..obs import Observation
    from ..workloads import make_workload

    config = make_config(mode)
    if config.tea is None:
        raise ValueError(f"mode {mode!r} has no TEA thread to observe")
    bundle = make_workload(workload, scale)
    chains = analyze_chains(bundle.program, config=config.tea)
    if use_mask:
        config = replace(
            config, tea=replace(config.tea, branch_mask=chains.allow_mask())
        )
    observation = Observation(record_events=False)
    capture = WalkCapture()
    capture.subscribe(observation.bus)
    leads_by_pc: dict[int, list[int]] = {}

    def on_resolved(event: Any) -> None:
        lead = event.data.get("lead")
        if lead is not None:
            leads_by_pc.setdefault(event.pc, []).append(lead)

    observation.bus.subscribe(on_resolved, ("branch_resolved",))
    result = run_workload(
        bundle, mode, scale, observe=observation,
        config=config if use_mask else None,
    )
    report = build_chain_report(chains, workload=bundle.name)
    report["mode"] = mode
    report["scale"] = scale
    report["masked"] = use_mask
    report["ipc"] = result.stats.ipc
    report["soundness"] = verify_walks(
        chains, capture.walks, config.tea, observation.bus
    )
    report["timeliness"] = reconcile_timeliness(chains, leads_by_pc)
    return report


def render_chain_report(report: dict[str, Any]) -> str:
    """Human-readable table for ``repro chains``."""
    counts = report["counts"]
    lines = [
        f"static chains: {report.get('workload', '?')}"
        + (
            f" under {report['mode']} ({report.get('scale', '?')} scale)"
            if "mode" in report
            else ""
        ),
        f"{'branch':>10s} {'line':>5s} {'size':>5s} {'depth':>6s} "
        f"{'loads':>6s} {'lat':>4s} {'loop':>5s} {'timely':>7s}  class",
    ]
    for rec in report["branches"]:
        timely = "-" if rec["timely"] is None else ("yes" if rec["timely"] else "no")
        lines.append(
            f"{rec['pc']:>#10x} {str(rec['line'] or '-'):>5s} "
            f"{rec['size']:>5d} {rec['depth']:>6d} {rec['load_depth']:>6d} "
            f"{rec['latency']:>4d} {str(rec['loop_length'] or '-'):>5s} "
            f"{timely:>7s}  {rec['classification']} ({rec['reason']})"
        )
    lines.append(
        f"{report['conditional_branches']} conditional branches: "
        f"{counts[CLASS_TRIVIAL]} trivially-predictable, "
        f"{counts[CLASS_CHAINABLE]} chainable, "
        f"{counts[CLASS_UNCHAINABLE]} unchainable"
    )
    soundness = report.get("soundness")
    if soundness is not None:
        lines.append(
            f"soundness: {soundness['unsound_total']} unsound finding(s) over "
            f"{soundness['walks_checked']} attributed walks "
            f"({soundness['branches_checked']} branches, "
            f"{soundness['skipped_no_slice']} indirect initiators skipped)"
        )
        for finding in soundness["findings"]:
            lines.append(f"  UNSOUND {finding['pc']:#x}: {finding['kind']}")
    timeliness = report.get("timeliness")
    if timeliness is not None and timeliness["compared"]:
        lines.append(
            f"timeliness: static vs measured agreement "
            f"{timeliness['agreement']:.2f} over {timeliness['compared']} "
            f"branches with >=10 resolutions"
        )
    return "\n".join(lines)
