"""Static-slicer oracle for the dynamic Backward Dataflow Walk.

The TEA thread discovers branch dependence chains dynamically: the
Fill Buffer samples retired uops and the Backward Dataflow Walk marks
chain members (paper §III-A, §IV-C).  The static backward slice over
the same program is ground truth for that walk, so this module scores
the walk's *chain membership* per H2P branch:

1. During a ``tea``-mode run, a :class:`WalkCapture` subscribes to the
   ``walk_done`` firehose event and keeps every walk's raw Fill Buffer
   entries.
2. Each captured walk is replayed once per initiating H2P branch with
   ``backward_dataflow_walk(..., initiator_pc=pc)``, which attributes
   marked instructions to that branch alone (no re-seeding, no other
   initiators).
3. The attributed dynamic chain ``D`` is compared against the static
   slice ``S``:  ``precision = |D ∩ S| / |D|`` (walk marks explained
   by the static chain) and ``recall = |D ∩ S| / |S|`` (static chain
   observed dynamically; low values just mean the Fill Buffer window
   is smaller than the whole program).

Per-branch results are emitted as ``slice_oracle`` events on the obs
bus and summarized into a JSON-safe report (``repro slice --oracle``,
uploaded as a CI artifact).
"""

from __future__ import annotations

from typing import Any

from ..obs.events import Event, EventBus
from ..tea.config import TeaConfig
from ..tea.fill_buffer import FillEntry, WalkResult, backward_dataflow_walk
from .slicer import ProgramSlices, slice_program


class WalkCapture:
    """Keeps every Backward Dataflow Walk's raw entries + result."""

    def __init__(self) -> None:
        self.walks: list[tuple[list[FillEntry], WalkResult]] = []

    def subscribe(self, bus: EventBus) -> None:
        bus.subscribe(self._on_walk_done, ("walk_done",))

    def _on_walk_done(self, event: Event) -> None:
        self.walks.append((event.data["entries"], event.data["result"]))

    def __len__(self) -> int:
        return len(self.walks)


def score_walks(
    slices: ProgramSlices,
    walks: list[tuple[list[FillEntry], WalkResult]],
    config: TeaConfig,
    bus: EventBus | None = None,
) -> dict[str, Any]:
    """Score dynamic chain membership against the static slices.

    Returns a JSON-safe report with one record per H2P branch that
    initiated at least one walk, plus aggregate statistics over the
    branches free of indirect control flow (where the static CFG is
    exact and the paper-level agreement bar applies).
    """
    dynamic: dict[int, set[int]] = {}
    walk_counts: dict[int, int] = {}
    sliced_pcs = set(slices.branches)
    for entries, _result in walks:
        initiators = {e.pc for e in entries if e.is_h2p_branch} & sliced_pcs
        for pc in initiators:
            replay = backward_dataflow_walk(entries, config, initiator_pc=pc)
            marked = {
                entries[i].pc for i, flag in enumerate(replay.marked) if flag
            }
            if marked:
                dynamic.setdefault(pc, set()).update(marked)
                walk_counts[pc] = walk_counts.get(pc, 0) + 1

    records: list[dict[str, Any]] = []
    for pc in sorted(dynamic):
        sl = slices.branches[pc]
        d = dynamic[pc]
        inter = d & sl.pcs
        precision = len(inter) / len(d)
        recall = len(inter) / len(sl.pcs)
        record = {
            "pc": pc,
            "line": sl.line,
            "static_size": len(sl.pcs),
            "dynamic_size": len(d),
            "intersection": len(inter),
            "precision": precision,
            "recall": recall,
            "walks": walk_counts[pc],
            "has_indirect": sl.has_indirect,
            "through_memory": sl.through_memory,
        }
        records.append(record)
        if bus is not None:
            bus.emit("slice_oracle", pc=pc, **{
                k: v for k, v in record.items() if k != "pc"
            })

    direct = [r for r in records if not r["has_indirect"]]
    summary: dict[str, Any] = {
        "h2p_branches_scored": len(records),
        "direct_branches": len(direct),
        "walks_captured": len(walks),
    }
    if direct:
        summary["mean_precision_direct"] = sum(
            r["precision"] for r in direct
        ) / len(direct)
        summary["min_precision_direct"] = min(r["precision"] for r in direct)
        summary["mean_recall_direct"] = sum(
            r["recall"] for r in direct
        ) / len(direct)
    return {"branches": records, "summary": summary}


def run_slice_oracle(
    workload: str,
    scale: str = "tiny",
    mode: str = "tea",
) -> dict[str, Any]:
    """Run one workload under a TEA mode and score its walks.

    Convenience driver for the CLI and CI: builds the workload, runs
    the full pipeline with telemetry + walk capture attached, and
    returns the comparison report.  The harness import is deliberately
    function-level — the analysis layer sits below the harness in the
    architecture DAG and only this entry point drives a simulation.
    """
    from ..harness.runner import make_config, run_workload
    from ..obs import Observation
    from ..workloads import make_workload

    config = make_config(mode)
    if config.tea is None:
        raise ValueError(f"mode {mode!r} has no TEA thread to observe")
    bundle = make_workload(workload, scale)
    slices = slice_program(bundle.program)
    observation = Observation(record_events=False)
    capture = WalkCapture()
    capture.subscribe(observation.bus)
    result = run_workload(bundle, mode, scale, observe=observation)
    report = score_walks(slices, capture.walks, config.tea, observation.bus)
    report["workload"] = bundle.name
    report["mode"] = mode
    report["scale"] = scale
    report["summary"]["conditional_branches"] = len(slices.branches)
    report["summary"]["ipc"] = result.stats.ipc
    return report


def render_report(report: dict[str, Any]) -> str:
    """Human-readable table for ``repro slice --oracle``."""
    lines = [
        f"slicer-vs-walk oracle: {report.get('workload', '?')} under "
        f"{report.get('mode', '?')} ({report.get('scale', '?')} scale)",
        f"{'branch':>10s} {'line':>5s} {'static':>7s} {'dynamic':>8s} "
        f"{'prec':>6s} {'recall':>7s} {'walks':>6s}  flags",
    ]
    for rec in report["branches"]:
        flags = []
        if rec["has_indirect"]:
            flags.append("indirect")
        if rec["through_memory"]:
            flags.append("mem")
        lines.append(
            f"{rec['pc']:>#10x} {str(rec['line'] or '-'):>5s} "
            f"{rec['static_size']:>7d} {rec['dynamic_size']:>8d} "
            f"{rec['precision']:>6.2f} {rec['recall']:>7.2f} "
            f"{rec['walks']:>6d}  {','.join(flags) or '-'}"
        )
    summary = report["summary"]
    lines.append(
        f"{summary['h2p_branches_scored']} H2P branches scored over "
        f"{summary['walks_captured']} walks"
    )
    if "mean_precision_direct" in summary:
        lines.append(
            f"direct-control-flow branches: {summary['direct_branches']} "
            f"(mean precision {summary['mean_precision_direct']:.3f}, "
            f"min {summary['min_precision_direct']:.3f})"
        )
    return "\n".join(lines)
