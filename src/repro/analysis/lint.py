"""Workload linter: static checks over assembled programs.

Rules (error findings fail ``repro lint``; warnings are reported):

==================  ========  ==========================================
rule                severity  meaning
==================  ========  ==========================================
``undefined-read``  error     a reachable instruction reads a register
                              that some path from entry never wrote
                              (the machine supplies zero, but a kernel
                              relying on that is almost always a bug)
``unreachable``     error     a basic block no path from entry reaches
``fall-off-end``    error     a reachable block can fall through past
                              the last instruction of the image
``self-jump``       error     an unconditional jump to itself — a
                              guaranteed infinite loop
``dead-store``      warning   a register definition no path ever reads
                              before redefinition or program exit
==================  ========  ==========================================

The dataflow rules run only over *reachable* code so one seeded bug
produces one finding (an unreachable block is reported once, not once
per suspicious instruction inside it).  Every registered workload must
be lint-clean — enforced by ``repro lint --all`` in CI and by
``tests/test_analysis_lint.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..isa import UopClass
from ..isa.program import Program
from ..isa.registers import register_name
from .cfg import build_cfg
from .dataflow import analyze_dataflow

ERROR = "error"
WARNING = "warning"

#: Rule identifiers, in report order.
RULES = (
    "undefined-read",
    "unreachable",
    "fall-off-end",
    "self-jump",
    "dead-store",
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a PC and a workload source line."""

    rule: str
    severity: str
    pc: int
    line: int | None
    message: str

    def render(self, name: str = "<program>") -> str:
        where = f"{name}:{self.line}" if self.line is not None else name
        return f"{where}: {self.severity}: [{self.rule}] {self.message}"


@dataclass
class LintReport:
    """All findings for one program."""

    findings: list[Finding]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def clean(self) -> bool:
        return not self.findings

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)


def lint_program(program: Program) -> LintReport:
    """Run every lint rule over ``program``."""
    cfg = build_cfg(program)
    df = analyze_dataflow(program, cfg)
    findings: list[Finding] = []

    # --- unreachable blocks -------------------------------------------
    for start, block in sorted(cfg.blocks.items()):
        if start not in cfg.reachable:
            first_line = block.line_range[0] if block.line_range else None
            findings.append(
                Finding(
                    rule="unreachable",
                    severity=ERROR,
                    pc=start,
                    line=first_line,
                    message=(
                        f"basic block at {start:#x} "
                        f"({block.num_instructions} instructions) is "
                        "unreachable from the entry point"
                    ),
                )
            )

    # --- fall-through off the end of the image ------------------------
    for start in sorted(cfg.falls_off_end):
        term = cfg.terminator(start)
        findings.append(
            Finding(
                rule="fall-off-end",
                severity=ERROR,
                pc=term.pc,
                line=term.line,
                message=(
                    f"control can fall through past the last instruction "
                    f"({term.opcode} at {term.pc:#x}); end the program "
                    "with halt or an unconditional jump"
                ),
            )
        )

    # --- self-jump infinite loops -------------------------------------
    for ins in program.instructions:
        if (
            ins.uop_class is UopClass.BR_JUMP
            and ins.target == ins.pc
            and (home := program.block_containing(ins.pc)) is not None
            and home.start_pc in cfg.reachable
        ):
            findings.append(
                Finding(
                    rule="self-jump",
                    severity=ERROR,
                    pc=ins.pc,
                    line=ins.line,
                    message=f"jmp at {ins.pc:#x} targets itself: "
                    "guaranteed infinite loop",
                )
            )

    # --- undefined register reads -------------------------------------
    for i, reg in df.maybe_undefined:
        ins = program.instructions[i]
        findings.append(
            Finding(
                rule="undefined-read",
                severity=ERROR,
                pc=ins.pc,
                line=ins.line,
                message=(
                    f"{ins.opcode} at {ins.pc:#x} reads "
                    f"{register_name(reg)}, which is never written on "
                    "some path from the entry point"
                ),
            )
        )

    # --- dead stores ---------------------------------------------------
    for i, reg in df.dead_defs:
        ins = program.instructions[i]
        findings.append(
            Finding(
                rule="dead-store",
                severity=WARNING,
                pc=ins.pc,
                line=ins.line,
                message=(
                    f"{ins.opcode} at {ins.pc:#x} writes "
                    f"{register_name(reg)}, but no path reads the value"
                ),
            )
        )

    order = {rule: k for k, rule in enumerate(RULES)}
    findings.sort(key=lambda f: (order[f.rule], f.pc))
    return LintReport(findings)
