"""Static program analysis over assembled :class:`~repro.isa.Program`s.

The subsystem mirrors, offline and conservatively, what the TEA thread
discovers dynamically at run time:

* :mod:`repro.analysis.cfg` — an explicit control-flow graph over the
  program's basic blocks (successors via branch targets/fallthrough,
  conservative edges for indirect control flow, reachability from the
  entry PC).
* :mod:`repro.analysis.dataflow` — iterative dataflow to fixpoint:
  reaching definitions, liveness, per-use def-use chains, and a
  conservative may-alias treatment of memory ops keyed on
  base-register + offset.
* :mod:`repro.analysis.slicer` — static backward slices from each
  conditional branch, producing per-branch chain instruction sets and
  per-block bit-masks in exactly the shape the TEA Block Cache uses.
* :mod:`repro.analysis.lint` — a workload linter (undefined-register
  reads, unreachable blocks, fall-through off the end of the image,
  dead stores, self-jump infinite loops); every registered workload
  must be lint-clean (``repro lint --all``).
* :mod:`repro.analysis.oracle` — scores the dynamic Backward Dataflow
  Walk's chain membership against the static slices, per H2P branch
  (precision/recall, emitted through the obs bus and ``repro slice
  --oracle``).
* :mod:`repro.analysis.chains` — static precomputation chains per
  conditional branch (live-ins, depth, latency), a three-way branch
  classification (trivially-predictable / chainable / unchainable)
  exported as a ``TeaConfig.branch_mask`` allow mask, a per-chain
  runtime soundness oracle over the ``walk_done`` firehose, and a
  static timeliness cost model reconciled against measured lead times
  (``repro chains``).
* :mod:`repro.analysis.arch_lint` — AST-based architecture-layering
  lint over the Python source tree itself (import DAG
  ``isa -> core/frontend -> tea -> harness/obs -> __main__``).
"""

from .cfg import CFG, build_cfg
from .chains import (
    ChainBudgets,
    ChainUnsound,
    ProgramChains,
    StaticChain,
    analyze_chains,
)
from .dataflow import DataflowResult, MemLoc, analyze_dataflow
from .lint import Finding, LintReport, lint_program
from .slicer import BranchSlice, ProgramSlices, slice_program

__all__ = [
    "CFG",
    "build_cfg",
    "DataflowResult",
    "MemLoc",
    "analyze_dataflow",
    "Finding",
    "LintReport",
    "lint_program",
    "BranchSlice",
    "ProgramSlices",
    "slice_program",
    "ChainBudgets",
    "ChainUnsound",
    "ProgramChains",
    "StaticChain",
    "analyze_chains",
]
