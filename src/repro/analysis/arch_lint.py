"""Architecture-layering lint: the import DAG, enforced.

The simulator is layered — ``isa`` at the bottom, then the machine
(``frontend``/``core``), TEA on top of the machine, and driver code
(``harness``, CLI) above everything.  Each layer may import only from
layers of *strictly lower* rank (or from itself); ``memory`` and
``obs`` are leaf utility layers everything may use.

This module checks that property statically with :mod:`ast`: it parses
every file under ``src/repro``, collects the **module-level** imports
(function-level lazy imports are exempt — they are the sanctioned
escape hatch for intentional inversions, e.g. the pipeline
constructing its TEA controller or ``repro.analysis.oracle`` driving
the harness), resolves relative imports, and reports any edge that
points sideways or upward.

Run it as a module (CI does)::

    python -m repro.analysis.arch_lint        # exit 1 on violation

or via :func:`check_layering` from the tier-1 test
``tests/test_arch_lint.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Layer name -> rank.  A module-level import must target a strictly
#: lower rank (same-layer imports are always fine).  ``""`` is the
#: top of the stack: ``repro/__init__.py`` and ``repro/__main__.py``.
LAYER_RANKS: dict[str, int] = {
    "memory": 0,
    "obs": 0,
    "isa": 1,
    "frontend": 2,
    "core": 3,
    "tea": 4,
    "runahead": 5,
    "crisp": 5,
    "analysis": 6,
    "verify": 6,
    "workloads": 7,
    "harness": 8,
    "fuzz": 9,
    "sampling": 9,
    "service": 9,
    "": 10,
}


def _layer_of(parts: tuple[str, ...]) -> str | None:
    """Layer name for a dotted module path, ``None`` if outside repro."""
    if not parts or parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


def _module_parts(root: Path, path: Path) -> tuple[tuple[str, ...], bool]:
    """Dotted parts of a source file, plus whether it is a package."""
    rel = path.relative_to(root).with_suffix("")
    parts = rel.parts
    if parts[-1] == "__init__":
        return parts[:-1], True
    return parts, False


def _module_level_imports(tree: ast.Module) -> list[ast.stmt]:
    """Import statements outside any function body.

    Conditional module-level imports (``if TYPE_CHECKING: ...``) count;
    anything inside a ``def``/``async def`` is a lazy import and exempt.
    """
    found: list[ast.stmt] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                found.append(child)
            visit(child)

    visit(tree)
    return found


def _imported_modules(
    stmt: ast.stmt, file_parts: tuple[str, ...], is_package: bool
) -> list[tuple[str, ...]]:
    """Absolute dotted parts of every module a statement imports."""
    if isinstance(stmt, ast.Import):
        return [tuple(alias.name.split(".")) for alias in stmt.names]
    assert isinstance(stmt, ast.ImportFrom)
    if stmt.level == 0:
        return [tuple((stmt.module or "").split("."))]
    # Relative: one containing package per dot (a package __init__ is
    # its own first level).  ``from . import x`` names submodules.
    package = file_parts if is_package else file_parts[:-1]
    if stmt.level > 1:
        package = package[: len(package) - (stmt.level - 1)]
    if stmt.module:
        return [package + tuple(stmt.module.split("."))]
    return [package + (alias.name,) for alias in stmt.names]


class LayeringViolation(Exception):
    """Raised by :func:`check_layering` in ``strict`` mode."""


def check_layering(src_root: Path | None = None) -> list[str]:
    """Check every file under ``src/repro``; return violation strings."""
    root = src_root or Path(__file__).resolve().parents[2]
    violations: list[str] = []
    for path in sorted((root / "repro").rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        file_parts, is_package = _module_parts(root, path)
        if path.parent == root / "repro":
            src_layer = ""  # top-level module (__init__, __main__)
        else:
            src_layer = _layer_of(file_parts)
        if src_layer is None:
            continue
        src_rank = LAYER_RANKS.get(src_layer)
        if src_rank is None:
            violations.append(
                f"{path.relative_to(root)}:1: unknown layer "
                f"{src_layer!r}; add it to LAYER_RANKS with a rank"
            )
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for stmt in _module_level_imports(tree):
            for target in _imported_modules(stmt, file_parts, is_package):
                dst_layer = _layer_of(target)
                if dst_layer is None or dst_layer == src_layer:
                    continue
                dst_rank = LAYER_RANKS.get(dst_layer)
                dotted = ".".join(target)
                if dst_rank is None:
                    violations.append(
                        f"{path.relative_to(root)}:{stmt.lineno}: import "
                        f"of unknown layer {dst_layer!r} ({dotted})"
                    )
                elif dst_rank >= src_rank:
                    violations.append(
                        f"{path.relative_to(root)}:{stmt.lineno}: "
                        f"layer {src_layer or 'repro'!r} (rank {src_rank}) "
                        f"must not import {dotted} "
                        f"(layer {dst_layer!r}, rank {dst_rank}); "
                        f"use a function-level import if intentional"
                    )
    return violations


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]).resolve() if args else None
    violations = check_layering(root)
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("architecture layering: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
