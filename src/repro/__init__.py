"""repro — reproduction of "Timely, Efficient, and Accurate Branch
Precomputation" (Deshmukh, Cai & Patt, MICRO 2024).

The package provides an execution-driven cycle-level out-of-order core
simulator with a decoupled TAGE-SC-L frontend, the TEA precomputation
thread (the paper's contribution), a Branch Runahead baseline, the
paper's workload suite as micro-ISA kernels, and a harness that
regenerates every table and figure of the evaluation.

Quick start::

    from repro import assemble, MemoryImage, Pipeline, SimConfig
    from repro.tea import TeaConfig

    program = assemble(SOURCE)
    stats = Pipeline(program, MemoryImage(),
                     SimConfig(tea=TeaConfig())).run(max_instructions=50_000)
    print(stats.ipc, stats.coverage)
"""

from .core import ConfigError, CoreConfig, Pipeline, SimConfig, SimStats, SimulationError
from .isa import AssemblerError, Instruction, Program, UopClass, assemble
from .memory import MemoryImage
from .obs import Observation

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "Pipeline",
    "SimConfig",
    "SimStats",
    "SimulationError",
    "ConfigError",
    "Observation",
    "AssemblerError",
    "Instruction",
    "Program",
    "UopClass",
    "assemble",
    "MemoryImage",
    "__version__",
]
