"""Differential oracle stack: golden interpreter vs cycle-exact pipeline.

One generated (or shrunk) program goes through three tiers:

1. **assemble** — :func:`repro.isa.data_directives.assemble_unit`; a
   rejected source is a ``crash:AssemblerError`` (shrink candidates hit
   this constantly; generated programs never should);
2. **golden interpreter** — sequential architectural execution with a
   step budget (``hang:InterpreterTimeout`` on exhaustion);
3. **pipeline** — the cycle-exact machine under a named mode with the
   runtime invariant auditor on, then an architectural diff of the
   committed registers and the full memory image against the
   interpreter's final state.

The outcome carries two identifiers:

* ``signature`` — the *full* triage key (exception type, invariant
  family, or first-divergent-location fingerprint).  Campaigns dedup
  unique bugs by this string.
* ``shrink_key`` — the signature with location indices stripped
  (``divergence:register:r7`` → ``divergence:register``).  The shrinker
  matches on this relaxed key so a reduction step that shifts *where*
  the same bug bites does not abort the reduction.

Classification statuses: ``pass`` / ``divergence`` / ``invariant`` /
``hang`` / ``crash``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core import Pipeline, SimulationError
from ..harness.runner import make_config
from ..isa import (
    AssemblerError,
    InterpreterError,
    InterpreterTimeout,
    run_program,
)
from ..memory.memory_image import MemoryImage
from ..verify import InvariantViolation

#: Step budget for the golden interpreter: generous relative to what a
#: ``max_cycles``-bounded pipeline can commit, tight enough that a
#: non-terminating generated program fails fast.
DEFAULT_MAX_STEPS = 500_000

#: Cycle watchdog for the pipeline leg.
DEFAULT_MAX_CYCLES = 2_000_000

PASS = "pass"
DIVERGENCE = "divergence"
INVARIANT = "invariant"
HANG = "hang"
CRASH = "crash"

STATUSES = (PASS, DIVERGENCE, INVARIANT, HANG, CRASH)


@dataclass(frozen=True)
class OracleOutcome:
    """Classification of one program under one machine mode."""

    status: str              #: one of :data:`STATUSES`
    signature: str | None    #: full triage key; ``None`` for a pass
    detail: str              #: human-readable one-liner
    steps: int               #: interpreter instructions (0 if it never ran)
    cycles: int              #: pipeline cycles (0 if it never ran)

    @property
    def ok(self) -> bool:
        return self.status == PASS

    @property
    def shrink_key(self) -> str | None:
        """Signature relaxed for reduction: location indices stripped."""
        if self.signature is None:
            return None
        parts = self.signature.split(":")
        if parts[0] == DIVERGENCE:
            return ":".join(parts[:2])
        return self.signature

    def as_record(self) -> dict:
        return {
            "status": self.status,
            "signature": self.signature,
            "detail": self.detail,
            "steps": self.steps,
            "cycles": self.cycles,
        }

    @classmethod
    def from_record(cls, record: dict) -> "OracleOutcome":
        return cls(
            status=record["status"],
            signature=record["signature"],
            detail=record["detail"],
            steps=record["steps"],
            cycles=record["cycles"],
        )


def _clone(memory: MemoryImage) -> MemoryImage:
    return MemoryImage(memory.snapshot())


def classify_source(
    source: str,
    mode: str = "baseline",
    check_invariants: int = 64,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> OracleOutcome:
    """Run the full oracle stack over one unit source."""
    from ..isa.data_directives import assemble_unit

    try:
        unit = assemble_unit(source)
    except AssemblerError as exc:
        return OracleOutcome(CRASH, "crash:AssemblerError", str(exc), 0, 0)

    # Tier 2: golden interpreter.
    try:
        ref = run_program(unit.program, _clone(unit.memory), max_steps=max_steps)
    except InterpreterTimeout as exc:
        return OracleOutcome(
            HANG, "hang:InterpreterTimeout", str(exc), exc.steps, 0
        )
    except InterpreterError as exc:
        return OracleOutcome(CRASH, "crash:InterpreterError", str(exc), 0, 0)

    # Tier 3: cycle-exact pipeline with the invariant auditor on.
    config = make_config(mode)
    if check_invariants:
        config = replace(config, check_invariants=check_invariants)
    pipeline = Pipeline(unit.program, _clone(unit.memory), config)
    try:
        stats = pipeline.run(max_cycles=max_cycles)
    except InvariantViolation as exc:
        return OracleOutcome(
            INVARIANT,
            f"invariant:{exc.invariant}",
            str(exc),
            ref.instructions_executed,
            0,
        )
    except SimulationError as exc:
        return OracleOutcome(
            HANG, "hang:SimulationError", str(exc), ref.instructions_executed, 0
        )
    except Exception as exc:  # noqa: BLE001 — any leak is a crash finding
        return OracleOutcome(
            CRASH,
            f"crash:{type(exc).__name__}",
            str(exc),
            ref.instructions_executed,
            0,
        )
    if not pipeline.halted:
        return OracleOutcome(
            HANG,
            "hang:max-cycles",
            f"pipeline did not halt within {max_cycles} cycles",
            ref.instructions_executed,
            stats.cycles,
        )

    # Architectural diff: committed registers, then the memory image.
    for idx, (expected, got) in enumerate(
        zip(ref.registers, pipeline.committed_regs)
    ):
        if expected != got:
            return OracleOutcome(
                DIVERGENCE,
                f"divergence:register:r{idx}",
                f"r{idx}: interpreter {expected!r}, pipeline {got!r}",
                ref.instructions_executed,
                stats.cycles,
            )
    ref_mem = ref.memory.snapshot()
    got_mem = pipeline.memory.snapshot()
    for addr in sorted(set(ref_mem) | set(got_mem)):
        expected, got = ref_mem.get(addr, 0), got_mem.get(addr, 0)
        if expected != got:
            return OracleOutcome(
                DIVERGENCE,
                f"divergence:memory:{addr:#x}",
                f"mem[{addr:#x}]: interpreter {expected!r}, pipeline {got!r}",
                ref.instructions_executed,
                stats.cycles,
            )
    return OracleOutcome(
        PASS, None, "architectural state matches", ref.instructions_executed,
        stats.cycles,
    )
