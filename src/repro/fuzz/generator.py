"""Seeded random program generator for the micro-ISA.

Programs are generated *structurally correct by construction* — every
loop is counted (bottom-tested, constant trip), every register is
written on all paths before it is read, every function returns, and the
image ends in ``halt``/``ret`` — and then *gated* by the PR 4 linter:
a candidate with any finding (including warnings) is discarded and the
next derived attempt generated, so every program the fuzzer hands to
the oracle stack is lint-clean by the same bar the registered kernels
meet.

The interesting-control-flow knobs map to the paper's hard-branch
taxonomy:

* ``data_dep_frac`` — fraction of if-branches guarded by *loaded data*
  (the Fig. 1 H2P pattern) rather than by the loop counter;
* ``pointer_chase`` — unrolled ``p = perm[p]`` chains producing
  load-dependent load addresses (TEA dependence chains through memory);
* ``call_depth`` — call/return chains with stack-saved ``ra`` (RAS
  depth, shadow-FTQ call handling);
* ``indirect_fanout`` — ``jr`` dispatch through a runtime-built jump
  table (ITTAGE / Block Cache indirect paths);
* ``alias_density`` — fraction of stores landing in a small shared
  offset set (store-forwarding and memory-dependence stress);
* ``loop_depth``/``loops``/``body_ops``/``trip_min``/``trip_max`` —
  program shape and size.

Generation is a pure function of ``(seed, profile)``: the same pair
always yields byte-identical source, which is what lets a shrinking
parent regenerate exactly what a campaign worker executed.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from ..analysis import LintReport, lint_program
from ..isa import AssemblerError
from ..isa.data_directives import AssembledUnit, assemble_unit

#: Stack top for generated call chains (mirrors workloads.base).
STACK_TOP = 0x0100_0000

# Register allocation contract for generated programs:
#   r1        accumulator (every def is eventually consumed; stored at exit)
#   r2/r3/r4  vals / perm / scratch array bases
#   r5        jump-table base (indirect_fanout > 0)
#   r6..r15   temporary pool
#   r16..r19  loop counters by nest depth
#   r20..r23  loop bounds by nest depth
#   r26       helper-function local
#   sp/ra     call chains
_ACC = "r1"
_VALS, _PERM, _SCRATCH, _JUMPTAB = "r2", "r3", "r4", "r5"
_TEMP_POOL = tuple(f"r{i}" for i in range(6, 16))
_CTR = tuple(f"r{16 + d}" for d in range(4))
_BND = tuple(f"r{20 + d}" for d in range(4))
_HELPER_TMP = "r26"

_ALU_RR = ("add", "sub", "and", "or", "xor", "slt", "sltu", "min", "max",
           "mul", "div", "rem")
_ALU_RI = ("addi", "subi", "andi", "ori", "xori", "slti")


class FuzzGenerationError(RuntimeError):
    """No lint-clean program could be generated within ``max_attempts``."""


@dataclass(frozen=True)
class GeneratorProfile:
    """Tunable knobs of the random program generator.

    All knobs are deterministic inputs: two calls with the same
    ``(seed, profile)`` produce identical source.
    """

    loops: int = 2              #: top-level loop nests
    loop_depth: int = 2         #: maximum loop nesting (1..4)
    body_ops: int = 5           #: operations drawn per loop body
    trip_min: int = 2           #: minimum loop trip count
    trip_max: int = 5           #: maximum loop trip count
    branch_frac: float = 0.5    #: probability a body op is an if-branch
    data_dep_frac: float = 0.7  #: fraction of ifs guarded by loaded data
    pointer_chase: int = 3      #: unrolled chase length (0 = off)
    call_depth: int = 2         #: helper call-chain depth (0 = off)
    alias_density: float = 0.5  #: fraction of stores in the alias set
    indirect_fanout: int = 4    #: jr jump-table cases, rounded to 2^k (0 = off)
    fp_frac: float = 0.15       #: probability a body op is an FP snippet
    array_len: int = 32         #: data array length, rounded to 2^k
    max_attempts: int = 20      #: lint-gate retry budget

    def __post_init__(self) -> None:
        checks = (
            (self.loops >= 1, "loops must be >= 1"),
            (1 <= self.loop_depth <= 4, "loop_depth must be in 1..4"),
            (self.body_ops >= 1, "body_ops must be >= 1"),
            (1 <= self.trip_min <= self.trip_max,
             "need 1 <= trip_min <= trip_max"),
            (0.0 <= self.branch_frac <= 1.0, "branch_frac must be in [0, 1]"),
            (0.0 <= self.data_dep_frac <= 1.0,
             "data_dep_frac must be in [0, 1]"),
            (self.pointer_chase >= 0, "pointer_chase must be >= 0"),
            (self.call_depth >= 0, "call_depth must be >= 0"),
            (0.0 <= self.alias_density <= 1.0,
             "alias_density must be in [0, 1]"),
            (self.indirect_fanout >= 0, "indirect_fanout must be >= 0"),
            (0.0 <= self.fp_frac <= 1.0, "fp_frac must be in [0, 1]"),
            (self.array_len >= 4, "array_len must be >= 4"),
            (self.max_attempts >= 1, "max_attempts must be >= 1"),
        )
        for ok, message in checks:
            if not ok:
                raise ValueError(f"GeneratorProfile: {message}")

    def as_record(self) -> dict:
        """JSON-safe dict (journal / repro-record payload)."""
        return asdict(self)

    @classmethod
    def from_record(cls, record: dict) -> "GeneratorProfile":
        return cls(**record)


def _pow2_ceil(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


@dataclass
class GeneratedProgram:
    """One lint-clean generated program, ready for the oracle stack."""

    seed: int
    attempt: int                #: lint-gate attempt that produced it
    source: str                 #: self-contained .data/.text unit source
    unit: AssembledUnit = field(repr=False)
    lint: LintReport = field(repr=False)

    @property
    def num_instructions(self) -> int:
        return len(self.unit.program)


class _Emitter:
    """Accumulates source lines while tracking register definedness.

    ``defined`` holds registers written on *every* path to the current
    emit point (reads are only drawn from it — no undefined-read
    findings); ``unread`` holds registers whose latest def has not been
    consumed yet (a consuming ``add acc, acc, reg`` is emitted before
    any overwrite — no dead-store findings).  The accumulator is exempt
    from ``unread``: every def is read by the next combine or by the
    final store.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.lines: list[str] = []
        self.defined: set[str] = {"zero"}
        self.unread: set[str] = set()
        self._label = 0

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def fresh(self, stem: str) -> str:
        self._label += 1
        return f"{stem}_{self._label}"

    # -- register discipline -------------------------------------------
    def read(self, *regs: str) -> None:
        self.unread.difference_update(regs)

    def write(self, reg: str) -> None:
        if reg in self.unread:
            # Consume the pending value so the previous def is never dead.
            self.emit(f"add {_ACC}, {_ACC}, {reg}")
            self.unread.discard(reg)
        self.defined.add(reg)
        if reg != _ACC:
            self.unread.add(reg)

    def pick_defined_temp(self) -> str | None:
        pool = [r for r in _TEMP_POOL if r in self.defined]
        return self.rng.choice(pool) if pool else None

    def pick_dst_temp(self) -> str:
        # Prefer registers with no pending unread value.
        fresh = [r for r in _TEMP_POOL if r not in self.unread]
        return self.rng.choice(fresh or list(_TEMP_POOL))


class _ProgramBuilder:
    def __init__(self, seed: int, attempt: int, profile: GeneratorProfile) -> None:
        self.profile = profile
        self.rng = random.Random(f"repro.fuzz:{seed}:{attempt}")
        self.e = _Emitter(self.rng)
        self.array_len = _pow2_ceil(profile.array_len)
        self.fanout = (
            _pow2_ceil(profile.indirect_fanout) if profile.indirect_fanout else 0
        )
        self.call_sites = 0

    # -- data section --------------------------------------------------
    def data_section(self) -> list[str]:
        n = self.array_len
        vals = [self.rng.randint(-64, 63) for _ in range(n)]
        perm = list(range(n))
        self.rng.shuffle(perm)
        lines = [
            ".data",
            "vals:    .word " + ", ".join(map(str, vals)),
            "perm:    .word " + ", ".join(map(str, perm)),
            f"scratch: .space {n}",
        ]
        if self.fanout:
            lines.append(f"jumptab: .space {self.fanout}")
        return lines

    # -- program scaffolding -------------------------------------------
    def build(self) -> str:
        e = self.e
        profile = self.profile
        e.emit(f"li {_ACC}, 0")
        e.defined.add(_ACC)
        for reg, sym in ((_VALS, "vals"), (_PERM, "perm"), (_SCRATCH, "scratch")):
            e.emit(f"li {reg}, {sym}")
            e.defined.add(reg)
        # vals/perm reads are drawn randomly; under a tight profile a
        # candidate may never touch them, so track the defs for the
        # epilogue consume-sweep (scratch is always read by the final
        # store).  Same for sp: a leaf-only call chain never reads it.
        e.unread.update((_VALS, _PERM))
        if self.fanout:
            e.emit(f"li {_JUMPTAB}, jumptab")
            e.defined.add(_JUMPTAB)
            tmp = "r6"
            for case in range(self.fanout):
                e.emit(f"la {tmp}, case_{case}")
                e.emit(f"st {tmp}, {8 * case}({_JUMPTAB})")
            e.defined.add(tmp)
        if profile.call_depth:
            e.emit(f"li sp, {STACK_TOP:#x}")
            e.defined.add("sp")
            e.unread.add("sp")
        if profile.fp_frac > 0.0:
            e.emit("fli f0, 0")
            e.defined.add("f0")
        for _ in range(profile.loops):
            self.loop(depth=0)
        if self.fanout:
            self.indirect_dispatch()
        # Consume every still-unread temporary, then publish the
        # accumulator so nothing the program computed is dead.
        for reg in sorted(e.unread):
            e.emit(f"add {_ACC}, {_ACC}, {reg}")
        e.unread.clear()
        if profile.fp_frac > 0.0:
            e.emit("ftoi r6, f0")
            e.emit(f"add {_ACC}, {_ACC}, r6")
        e.emit(f"st {_ACC}, 0({_SCRATCH})")
        e.emit("halt")
        self.helpers()
        return "\n".join(self.data_section() + [".text"] + e.lines) + "\n"

    # -- loops ---------------------------------------------------------
    def loop(self, depth: int) -> None:
        e = self.e
        profile = self.profile
        ctr, bnd = _CTR[depth], _BND[depth]
        trip = self.rng.randint(profile.trip_min, profile.trip_max)
        head = e.fresh("loop")
        e.emit(f"li {bnd}, {trip}")
        e.defined.add(bnd)
        e.unread.discard(bnd)
        e.emit(f"li {ctr}, 0")
        e.defined.add(ctr)
        e.unread.discard(ctr)
        e.label(head)
        nested = False
        for _ in range(profile.body_ops):
            self.body_op(depth)
            if (
                not nested
                and depth + 1 < profile.loop_depth
                and self.rng.random() < 0.5
            ):
                self.loop(depth + 1)
                nested = True
        e.emit(f"addi {ctr}, {ctr}, 1")
        e.emit(f"blt {ctr}, {bnd}, {head}")

    # -- body op menu --------------------------------------------------
    def body_op(self, depth: int) -> None:
        rng = self.rng
        profile = self.profile
        if rng.random() < profile.branch_frac:
            self.if_branch(depth)
            return
        if profile.fp_frac and rng.random() < profile.fp_frac:
            self.fp_snippet()
            return
        menu = ["alu", "load", "store"]
        if profile.pointer_chase:
            menu.append("chase")
        if profile.call_depth and self.call_sites < 3:
            menu.append("call")
        kind = rng.choice(menu)
        if kind == "alu":
            self.alu_op(depth)
        elif kind == "load":
            self.load_op(depth)
        elif kind == "store":
            self.store_op(depth)
        elif kind == "chase":
            self.chase(depth)
        else:
            self.call_site()

    def alu_op(self, depth: int) -> None:
        e, rng = self.e, self.rng
        dst = e.pick_dst_temp()
        src = e.pick_defined_temp()
        if src is None or rng.random() < 0.3:
            src = _CTR[depth]
        if rng.random() < 0.5:
            op = rng.choice(_ALU_RI)
            imm = (rng.randint(0, self.array_len - 1) if op == "andi"
                   else rng.randint(-16, 16))
            e.read(src)
            e.write(dst)
            e.emit(f"{op} {dst}, {src}, {imm}")
        else:
            other = e.pick_defined_temp() or _ACC
            e.read(src, other)
            e.write(dst)
            e.emit(f"{rng.choice(_ALU_RR)} {dst}, {src}, {other}")

    def masked_index(self, depth: int, source_reg: str | None = None) -> str:
        """Emit ``idx = source & (array_len - 1)``; returns the index reg."""
        e = self.e
        src = source_reg or _CTR[depth]
        idx = e.pick_dst_temp()
        e.read(src)
        e.write(idx)
        e.emit(f"andi {idx}, {src}, {self.array_len - 1}")
        return idx

    def address_of(self, idx: str, base: str) -> str:
        """Emit address computation ``base + 8*idx``; returns the reg."""
        e = self.e
        addr = e.pick_dst_temp()
        e.read(idx)
        e.write(addr)
        e.emit(f"shli {addr}, {idx}, 3")
        e.read(addr)
        e.write(addr)
        e.emit(f"add {addr}, {addr}, {base}")
        return addr

    def load_op(self, depth: int) -> None:
        e, rng = self.e, self.rng
        if rng.random() < 0.5:
            # Direct offset from a base register.
            base = rng.choice((_VALS, _PERM, _SCRATCH))
            dst = e.pick_dst_temp()
            e.write(dst)
            e.emit(f"ld {dst}, {8 * rng.randrange(self.array_len)}({base})")
        else:
            # Data-dependent address through a masked index.
            src = e.pick_defined_temp()
            idx = self.masked_index(depth, src)
            addr = self.address_of(idx, rng.choice((_VALS, _PERM)))
            dst = e.pick_dst_temp()
            e.read(addr)
            e.write(dst)
            e.emit(f"ld {dst}, 0({addr})")

    def store_op(self, depth: int) -> None:
        e, rng = self.e, self.rng
        value = e.pick_defined_temp() or _ACC
        e.read(value)
        if rng.random() < self.profile.alias_density:
            # The shared alias set: three hot scratch slots.
            off = 8 * rng.choice((0, 1, 2))
            e.emit(f"st {value}, {off}({_SCRATCH})")
        elif rng.random() < 0.5:
            off = 8 * rng.randrange(self.array_len)
            e.emit(f"st {value}, {off}({_SCRATCH})")
        else:
            idx = self.masked_index(depth, e.pick_defined_temp())
            addr = self.address_of(idx, _SCRATCH)
            e.read(value, addr)
            e.emit(f"st {value}, 0({addr})")

    def chase(self, depth: int) -> None:
        """Unrolled pointer chase: a ``p = perm[p]`` dependence chain."""
        e = self.e
        p = self.masked_index(depth, e.pick_defined_temp())
        for _ in range(self.profile.pointer_chase):
            addr = self.address_of(p, _PERM)
            e.read(addr)
            e.write(p)
            e.emit(f"ld {p}, 0({addr})")
        # Use the chase result as a data-dependent load index.
        addr = self.address_of(p, _VALS)
        dst = e.pick_dst_temp()
        e.read(addr)
        e.write(dst)
        e.emit(f"ld {dst}, 0({addr})")

    def if_branch(self, depth: int) -> None:
        """A forward skip branch; body only reads already-defined regs."""
        e, rng = self.e, self.rng
        skip = e.fresh("skip")
        if rng.random() < self.profile.data_dep_frac:
            # Data-dependent guard: the sign of a loaded random value.
            idx = self.masked_index(depth, e.pick_defined_temp())
            addr = self.address_of(idx, _VALS)
            guard = e.pick_dst_temp()
            e.read(addr)
            e.write(guard)
            e.emit(f"ld {guard}, 0({addr})")
            e.read(guard)
            e.emit(f"{rng.choice(('blt', 'bge'))} {guard}, zero, {skip}")
        else:
            # Counted guard: a predictable function of the loop counter.
            ctr = _CTR[depth]
            guard = e.pick_dst_temp()
            e.read(ctr)
            e.write(guard)
            e.emit(f"andi {guard}, {ctr}, 1")
            e.read(guard)
            e.emit(f"{rng.choice(('beq', 'bne'))} {guard}, zero, {skip}")
        for _ in range(rng.randint(1, 3)):
            src = e.pick_defined_temp() or _ACC
            e.read(src)
            if rng.random() < 0.3:
                e.emit(f"st {src}, {8 * rng.choice((0, 1, 2))}({_SCRATCH})")
            else:
                e.emit(f"{rng.choice(('add', 'sub', 'xor'))} "
                       f"{_ACC}, {_ACC}, {src}")
        e.label(skip)

    def indirect_dispatch(self) -> None:
        """A counted loop whose body is a jr through the jump table.

        Exactly one dispatch site per program: the case blocks are the
        jump-table targets built in the prologue, and every case jumps
        to the shared join before the loop's backedge, so termination
        stays counted no matter which target fires.
        """
        e, rng = self.e, self.rng
        ctr, bnd = _CTR[0], _BND[0]
        trips = rng.randint(4, 8)
        head = e.fresh("ind")
        join = e.fresh("join")
        e.emit(f"li {bnd}, {trips}")
        e.emit(f"li {ctr}, 0")
        e.label(head)
        # Index: a data-dependent mix of counter and accumulator.
        idx = e.pick_dst_temp()
        e.write(idx)
        e.emit(f"add {idx}, {ctr}, {_ACC}")
        e.read(idx)
        e.write(idx)
        e.emit(f"andi {idx}, {idx}, {self.fanout - 1}")
        addr = self.address_of(idx, _JUMPTAB)
        target = e.pick_dst_temp()
        e.read(addr)
        e.write(target)
        e.emit(f"ld {target}, 0({addr})")
        e.read(target)
        e.emit(f"jr {target}")
        for case in range(self.fanout):
            e.label(f"case_{case}")
            src = e.pick_defined_temp() or _ACC
            e.read(src)
            op = rng.choice(("add", "xor", "sub"))
            e.emit(f"{op} {_ACC}, {_ACC}, {src}")
            e.emit(f"jmp {join}")
        e.label(join)
        e.emit(f"addi {ctr}, {ctr}, 1")
        e.emit(f"blt {ctr}, {bnd}, {head}")

    def call_site(self) -> None:
        self.call_sites += 1
        self.e.emit("call fn_0")

    def fp_snippet(self) -> None:
        e, rng = self.e, self.rng
        src = e.pick_defined_temp() or _ACC
        e.read(src)
        e.emit(f"itof f1, {src}")
        e.emit(f"{rng.choice(('fadd', 'fsub', 'fmax'))} f0, f0, f1")
        if rng.random() < 0.3:
            dst = e.pick_dst_temp()
            e.write(dst)
            e.emit(f"fcmplt {dst}, f1, f0")

    # -- helper functions ----------------------------------------------
    def helpers(self) -> None:
        if not self.call_sites:
            return
        e = self.e
        depth = self.profile.call_depth
        for i in range(depth):
            leaf = i == depth - 1
            e.label(f"fn_{i}")
            if not leaf:
                e.emit("addi sp, sp, -8")
                e.emit("st ra, 0(sp)")
            off = 8 * self.rng.randrange(self.array_len)
            e.emit(f"ld {_HELPER_TMP}, {off}({_VALS})")
            e.emit(f"add {_ACC}, {_ACC}, {_HELPER_TMP}")
            if not leaf:
                e.emit(f"call fn_{i + 1}")
                e.emit("ld ra, 0(sp)")
                e.emit("addi sp, sp, 8")
            e.emit("ret")


def generate_source(seed: int, profile: GeneratorProfile, attempt: int = 0) -> str:
    """One candidate source text (not yet lint-gated)."""
    return _ProgramBuilder(seed, attempt, profile).build()


def generate_program(
    seed: int, profile: GeneratorProfile | None = None
) -> GeneratedProgram:
    """Generate a lint-clean program for ``seed``.

    Candidates failing the linter (or, defensively, the assembler) are
    discarded and the next derived attempt tried; the result is the
    first clean candidate, so the function is deterministic in
    ``(seed, profile)``.  Raises :class:`FuzzGenerationError` when
    ``profile.max_attempts`` candidates all fail — which indicates a
    generator bug, not bad luck.
    """
    profile = profile or GeneratorProfile()
    last: str | None = None
    for attempt in range(profile.max_attempts):
        source = generate_source(seed, profile, attempt)
        try:
            unit = assemble_unit(source)
        except AssemblerError as exc:
            last = f"attempt {attempt}: assembler: {exc}"
            continue
        report = lint_program(unit.program)
        if report.clean:
            return GeneratedProgram(seed, attempt, source, unit, report)
        last = (
            f"attempt {attempt}: lint: "
            + "; ".join(f.render("generated") for f in report.findings[:3])
        )
    raise FuzzGenerationError(
        f"seed {seed}: no lint-clean candidate in "
        f"{profile.max_attempts} attempts ({last})"
    )
