"""Seeded-bug fixtures: deliberately broken pipeline semantics.

The CI fuzz smoke job (and ``tests/test_fuzz_campaign.py``) must prove
the oracle stack *can* catch a real bug, not just that the current
kernel happens to be correct.  Each named bug here monkeypatches one
semantics function **in the pipeline's namespace only** —
:mod:`repro.core.pipeline` imports ``compute_result``/``branch_taken``
by name, so patching ``repro.core.pipeline.compute_result`` corrupts
the cycle-exact machine while the golden interpreter (which calls
:mod:`repro.isa.semantics` through its own import) stays correct.
Every injected bug is therefore *guaranteed* to be a pipeline-vs-
interpreter discrepancy, exactly the class the differential oracle
exists to find.

Bugs are applied with :func:`seeded_bug` as a context manager (or via
the ``seeded_bug=`` argument of the campaign entry points, which apply
it inside each worker so process pools work too).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..isa import Instruction
from ..isa.semantics import branch_taken, compute_result


def _addi_off_by_one(instr: Instruction, values: tuple) -> int | float | None:
    """``addi rd, rs, 1`` computes one too many (loop-counter poison)."""
    result = compute_result(instr, values)
    if instr.opcode == "addi" and instr.imm == 1 and result is not None:
        return result + 1
    return result


def _xor_as_or(instr: Instruction, values: tuple) -> int | float | None:
    """``xor`` computes ``or`` — silent data corruption on mixers."""
    if instr.opcode == "xor":
        return values[0] | values[1]
    return compute_result(instr, values)


def _blt_off_by_one(instr: Instruction, values: tuple) -> bool:
    """``blt`` also takes on equality — loops run one extra trip."""
    if instr.opcode == "blt":
        return values[0] <= values[1]
    return branch_taken(instr, values)


#: name -> (pipeline attribute to patch, replacement)
SEEDED_BUGS: dict = {
    "addi-imm-one": ("compute_result", _addi_off_by_one),
    "xor-as-or": ("compute_result", _xor_as_or),
    "blt-off-by-one": ("branch_taken", _blt_off_by_one),
}


@contextmanager
def seeded_bug(name: str | None) -> Iterator[None]:
    """Temporarily break the pipeline's semantics; ``None`` is a no-op."""
    if name is None:
        yield
        return
    try:
        attr, broken = SEEDED_BUGS[name]
    except KeyError:
        raise ValueError(
            f"unknown seeded bug {name!r}; known: {sorted(SEEDED_BUGS)}"
        ) from None
    from ..core import pipeline as pipeline_module

    original = getattr(pipeline_module, attr)
    setattr(pipeline_module, attr, broken)
    try:
        yield
    finally:
        setattr(pipeline_module, attr, original)
