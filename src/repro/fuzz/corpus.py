"""Self-contained JSON repro records and the ``fuzz/`` corpus.

Every unique failure a campaign finds is written as one JSON file under
``benchmarks/fuzz/`` (override with ``REPRO_FUZZ_CORPUS`` — the tests
point it at a tmpdir).  A record is *self-contained*: the full unit
source (data section included), the generator seed and knobs, the
machine mode, the config digest, and the failure signature — everything
needed to re-run the failure years later with nothing but the record.

Records double as **regression workloads**: :func:`make_corpus_workload`
turns one into a registry :class:`~repro.workloads.base.Workload` whose
validator re-runs the golden interpreter and diffs committed state, and
the registry exposes each record as ``fuzz/<name>`` so ``repro run`` /
``repro lint --all`` cover past findings forever.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import TYPE_CHECKING

from .oracle import OracleOutcome, classify_source

if TYPE_CHECKING:
    from ..core.pipeline import Pipeline
    from ..workloads.base import Workload

RECORD_SCHEMA = 1

#: Environment override for the corpus directory (tests, scratch runs).
CORPUS_ENV = "REPRO_FUZZ_CORPUS"

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def default_corpus_dir() -> Path:
    """``benchmarks/fuzz`` at the repo root, or ``$REPRO_FUZZ_CORPUS``."""
    override = os.environ.get(CORPUS_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "fuzz"


def record_name(signature: str, seed: int) -> str:
    """Stable corpus file stem for a unique failure."""
    slug = _SLUG_RE.sub("-", signature.lower()).strip("-")
    return f"{slug}-s{seed:06d}"


def make_repro_record(
    name: str,
    seed: int,
    source: str,
    signature: str,
    outcome: OracleOutcome,
    mode: str,
    check_invariants: int,
    profile_record: dict,
    config_digest: str,
    num_instructions: int,
    shrunk: bool,
    seeded_bug: str | None = None,
) -> dict:
    """Assemble the self-contained JSON payload for one failure."""
    return {
        "schema": RECORD_SCHEMA,
        "name": name,
        "seed": seed,
        "signature": signature,
        "outcome": outcome.as_record(),
        "mode": mode,
        "check_invariants": check_invariants,
        "profile": profile_record,
        "config_digest": config_digest,
        "num_instructions": num_instructions,
        "shrunk": shrunk,
        "seeded_bug": seeded_bug,
        "source": source,
    }


def write_record(record: dict, directory: Path | None = None) -> Path:
    """Write one repro record; returns the path."""
    directory = directory or default_corpus_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record['name']}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_record(path: Path) -> dict:
    record: dict = json.loads(Path(path).read_text())
    if record.get("schema") != RECORD_SCHEMA:
        raise ValueError(
            f"{path}: unsupported repro record schema {record.get('schema')!r}"
        )
    return record


def load_corpus(directory: Path | None = None) -> list[dict]:
    """Every repro record in the corpus, sorted by name."""
    directory = directory or default_corpus_dir()
    if not directory.is_dir():
        return []
    return [load_record(p) for p in sorted(directory.glob("*.json"))]


def corpus_names(directory: Path | None = None) -> tuple[str, ...]:
    """Registry names (``fuzz/<stem>``) for every corpus record."""
    directory = directory or default_corpus_dir()
    if not directory.is_dir():
        return ()
    return tuple(f"fuzz/{p.stem}" for p in sorted(directory.glob("*.json")))


def replay_record(record: dict) -> OracleOutcome:
    """Re-run the full oracle stack exactly as the record specifies.

    Applies the record's seeded bug (fixtures reproduce only under the
    broken semantics that exposed them); a genuine finding has
    ``seeded_bug: null`` and replays against the current kernel.
    """
    from .bugs import seeded_bug

    with seeded_bug(record.get("seeded_bug")):
        return classify_source(
            record["source"],
            mode=record["mode"],
            check_invariants=record["check_invariants"],
        )


def make_corpus_workload(
    name: str, directory: Path | None = None
) -> "Workload":
    """Build the regression :class:`Workload` for ``fuzz/<stem>``.

    The validator diffs the pipeline's committed registers and memory
    against a fresh golden-interpreter run — i.e. the repro passes once
    (and only once) the divergence it captured is fixed.  Records of
    *seeded-bug* fixtures validate green on the correct kernel, which is
    exactly what a regression corpus wants.
    """
    from ..isa import run_program
    from ..isa.data_directives import assemble_unit
    from ..memory.memory_image import MemoryImage
    from ..workloads.base import COMPLEX, Workload

    stem = name.split("/", 1)[1] if name.startswith("fuzz/") else name
    directory = directory or default_corpus_dir()
    path = directory / f"{stem}.json"
    if not path.is_file():
        raise ValueError(
            f"unknown fuzz corpus record {name!r} (no {path})"
        )
    record = load_record(path)
    unit = assemble_unit(record["source"])

    def validate(pipeline: "Pipeline") -> bool:
        ref = run_program(
            unit.program, MemoryImage(unit.memory.snapshot())
        )
        if list(ref.registers) != list(pipeline.committed_regs):
            return False
        ref_mem = ref.memory.snapshot()
        got_mem = pipeline.memory.snapshot()
        for addr in set(ref_mem) | set(got_mem):
            if ref_mem.get(addr, 0) != got_mem.get(addr, 0):
                return False
        return True

    return Workload(
        name=f"fuzz/{stem}",
        program=unit.program,
        memory=unit.memory,
        category=COMPLEX,
        description=(
            f"fuzz repro: {record['signature']} "
            f"(seed {record['seed']}, {record['mode']})"
        ),
        validate=validate,
    )
