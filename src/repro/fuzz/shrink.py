"""Delta-debugging shrinker for failing fuzz programs.

Reduction runs in three phases, each re-validating the failure against
the oracle stack after every candidate edit:

1. **block-level** — drop whole label-delimited spans of the text
   section (a case arm, a helper function, a loop body tail) to
   fixpoint; this is what collapses a 150-instruction program fast;
2. **ddmin line-level** — classic Zeller chunked removal over *all*
   remaining source lines (data directives included), halving the
   chunk size until single lines;
3. **single-line sweep** — repeat 1-line removal passes to fixpoint.

A candidate is accepted only if (a) the oracle reproduces the same
*relaxed* failure key (``OracleOutcome.shrink_key`` — exact signature
minus the divergent-location index, which legitimately shifts as
instructions disappear), and (b) the reduced program still has **zero
lint errors** — minimized repros become permanent regression workloads
behind the ``fuzz/`` registry namespace, and those must pass
``repro lint --all`` like every hand-written kernel.  Invalid
candidates (assembler rejects, different failure, lint errors) are
simply skipped; the shrinker never needs them to be meaningful.

The oracle-evaluation budget bounds worst-case work; reduction is
best-effort within it and deterministic (fixed scan order, no
randomness).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import lint_program
from ..isa import AssemblerError
from ..isa.data_directives import assemble_unit
from .bugs import seeded_bug
from .oracle import (
    CRASH,
    DEFAULT_MAX_CYCLES,
    DEFAULT_MAX_STEPS,
    OracleOutcome,
    classify_source,
)

DEFAULT_BUDGET = 512


@dataclass
class ShrinkResult:
    """Outcome of one reduction run."""

    source: str              #: minimized source (original if irreducible)
    outcome: OracleOutcome   #: oracle outcome of the minimized source
    original_lines: int
    final_lines: int
    evaluations: int         #: oracle runs spent
    num_instructions: int    #: assembled instruction count of the result

    @property
    def reduced(self) -> bool:
        return self.final_lines < self.original_lines


class _Reducer:
    def __init__(
        self,
        target_key: str,
        mode: str,
        check_invariants: int,
        max_steps: int,
        max_cycles: int,
        bug: str | None,
        budget: int,
    ) -> None:
        self.target_key = target_key
        self.mode = mode
        self.check_invariants = check_invariants
        self.max_steps = max_steps
        self.max_cycles = max_cycles
        self.bug = bug
        self.budget = budget
        self.evaluations = 0
        self.last_outcome: OracleOutcome | None = None

    def classify(self, source: str) -> OracleOutcome:
        self.evaluations += 1
        with seeded_bug(self.bug):
            return classify_source(
                source,
                mode=self.mode,
                check_invariants=self.check_invariants,
                max_steps=self.max_steps,
                max_cycles=self.max_cycles,
            )

    def valid(self, lines: list[str]) -> bool:
        """Does this candidate still exhibit the target failure?"""
        if self.evaluations >= self.budget:
            return False
        source = "\n".join(lines) + "\n"
        outcome = self.classify(source)
        if outcome.shrink_key != self.target_key:
            return False
        if outcome.status != CRASH and not self._lint_ok(source):
            return False
        self.last_outcome = outcome
        return True

    @staticmethod
    def _lint_ok(source: str) -> bool:
        try:
            unit = assemble_unit(source)
        except AssemblerError:
            return False
        return not lint_program(unit.program).errors

    # -- phase 1: label-delimited block spans ---------------------------
    @staticmethod
    def _block_spans(lines: list[str]) -> list[tuple[int, int]]:
        """(start, end) half-open spans from each label to the next."""
        starts = [
            i
            for i, line in enumerate(lines)
            if line.strip().endswith(":") and not line.lstrip().startswith(".")
        ]
        spans = []
        for pos, start in enumerate(starts):
            end = starts[pos + 1] if pos + 1 < len(starts) else len(lines)
            spans.append((start, end))
        return spans

    def reduce_blocks(self, lines: list[str]) -> list[str]:
        changed = True
        while changed and self.evaluations < self.budget:
            changed = False
            for start, end in self._block_spans(lines):
                candidate = lines[:start] + lines[end:]
                if candidate and self.valid(candidate):
                    lines = candidate
                    changed = True
                    break
        return lines

    # -- phase 2/3: ddmin over lines ------------------------------------
    def reduce_lines(self, lines: list[str]) -> list[str]:
        chunk = max(len(lines) // 2, 1)
        while chunk >= 1 and self.evaluations < self.budget:
            removed_any = False
            i = 0
            while i < len(lines):
                candidate = lines[:i] + lines[i + chunk:]
                if candidate and self.valid(candidate):
                    lines = candidate
                    removed_any = True
                else:
                    i += chunk
                if self.evaluations >= self.budget:
                    break
            if not removed_any:
                if chunk == 1:
                    break
                chunk = max(chunk // 2, 1)
            elif chunk > len(lines):
                chunk = max(len(lines) // 2, 1)
        return lines


def shrink_source(
    source: str,
    target_key: str,
    mode: str = "baseline",
    check_invariants: int = 64,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    bug: str | None = None,
    budget: int = DEFAULT_BUDGET,
) -> ShrinkResult:
    """Minimize ``source`` while preserving the relaxed failure key.

    ``bug`` applies a :mod:`repro.fuzz.bugs` seeded bug around every
    oracle evaluation, so fixtures shrink under the same broken
    semantics that exposed them.
    """
    reducer = _Reducer(
        target_key, mode, check_invariants, max_steps, max_cycles, bug, budget
    )
    lines = source.splitlines()
    original_lines = len(lines)
    if not reducer.valid(lines):
        raise ValueError(
            f"source does not reproduce failure key {target_key!r} "
            f"(got {reducer.classify(source).shrink_key!r})"
        )
    lines = reducer.reduce_blocks(lines)
    lines = reducer.reduce_lines(lines)
    final_source = "\n".join(lines) + "\n"
    outcome = reducer.last_outcome
    assert outcome is not None
    try:
        count = len(assemble_unit(final_source).program)
    except AssemblerError:
        count = 0
    return ShrinkResult(
        source=final_source,
        outcome=outcome,
        original_lines=original_lines,
        final_lines=len(lines),
        evaluations=reducer.evaluations,
        num_instructions=count,
    )
