"""Fuzz campaigns: seed fan-out, triage, shrinking, repro records.

A campaign is a list of seeds executed as :class:`RunSpec` cells on the
existing :class:`~repro.harness.executor.CampaignExecutor` — the fuzzer
inherits its process pool, per-run wall-clock timeouts, bounded retry,
and checkpoint/resume journal for free.  Each worker *regenerates* its
program from ``(seed, profile)`` (sources never cross the process
boundary; determinism makes regeneration exact), runs the oracle stack,
and ships the classification back as the cell payload.

Triage deduplicates failures by full signature — exception type,
invariant family, or first-divergent-state fingerprint — so a thousand
seeds tripping one bug report **one** unique failure.  With shrinking
enabled, the lowest-seed representative of each unique signature is
minimized by :mod:`repro.fuzz.shrink` and written as a self-contained
JSON repro record into the corpus.

Everything in the returned report is deterministic for a pinned seed
list: no timestamps, no durations, sorted iteration everywhere — CI
diffs two runs of the same batch byte-for-byte.
"""

from __future__ import annotations

from functools import partial
from pathlib import Path
from typing import Iterable

from ..harness.executor import CampaignExecutor, RunOutcome, RunSpec
from .bugs import seeded_bug
from .corpus import make_repro_record, record_name, write_record
from .generator import GeneratorProfile, generate_program
from .oracle import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_MAX_STEPS,
    PASS,
    STATUSES,
    OracleOutcome,
    classify_source,
)
from .shrink import DEFAULT_BUDGET, shrink_source

#: Scale tag on fuzz run specs (fuzz cells carry no workload scale).
FUZZ_SCALE = "fuzz"

REPORT_SCHEMA = 1


def fuzz_spec(
    seed: int,
    mode: str = "baseline",
    check_invariants: int = 64,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> RunSpec:
    """The campaign cell for one seed (workload name embeds the seed,
    keeping executor keys unique per cell)."""
    return RunSpec(
        workload=f"fuzz-{seed:06d}",
        mode=mode,
        scale=FUZZ_SCALE,
        max_cycles=max_cycles,
        seed=seed,
        check_invariants=check_invariants,
    )


def execute_fuzz_spec(
    record: dict,
    profile_record: dict | None = None,
    bug: str | None = None,
) -> dict:
    """Worker task: regenerate the seed's program, run the oracle.

    Module-level (and driven through :func:`functools.partial`) so the
    executor can pickle it into pool workers; the seeded bug is applied
    *inside* the worker so broken-semantics campaigns parallelize too.
    """
    spec = RunSpec.from_record(record)
    profile = (
        GeneratorProfile.from_record(profile_record)
        if profile_record
        else GeneratorProfile()
    )
    generated = generate_program(spec.seed, profile)
    with seeded_bug(bug):
        outcome = classify_source(
            generated.source,
            mode=spec.mode,
            check_invariants=spec.check_invariants,
            max_steps=DEFAULT_MAX_STEPS,
            max_cycles=spec.max_cycles,
        )
    return {
        "stats": {
            "fuzz": outcome.as_record(),
            "num_instructions": generated.num_instructions,
            "attempt": generated.attempt,
        },
        "validated": outcome.ok,
        "halted": True,
    }


def _outcome_of(run_outcome: RunOutcome) -> tuple[OracleOutcome, bool]:
    """Map an executor cell to ``(oracle outcome, synthetic)``.

    ``synthetic`` marks classifications invented for executor-level
    failures (wall-clock kill, generator crash, worker death) — those
    did not come out of the oracle stack and cannot be shrunk against
    it.
    """
    if run_outcome.ok:
        stats = run_outcome.stats or {}
        return OracleOutcome.from_record(stats["fuzz"]), False
    failure = run_outcome.failure
    assert failure is not None  # non-ok outcomes always carry one
    if run_outcome.status == "timeout":
        return (
            OracleOutcome(
                "hang", "hang:WallClockTimeout", failure.message, 0, 0,
            ),
            True,
        )
    return (
        OracleOutcome(
            "crash",
            f"crash:{failure.exception}",
            failure.message,
            0,
            0,
        ),
        True,
    )


def run_fuzz_campaign(
    seeds: Iterable[int],
    mode: str = "baseline",
    check_invariants: int = 64,
    jobs: int = 0,
    budget: float | None = 60.0,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_BUDGET,
    corpus_dir: Path | None = None,
    profile: GeneratorProfile | None = None,
    bug: str | None = None,
    checkpoint: Path | None = None,
    resume: bool = False,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> dict:
    """Run a full fuzz campaign; returns the deterministic triage report.

    ``budget`` is the per-run wall-clock limit in seconds (enforced by
    worker termination when ``jobs >= 1``; inline runs are bounded by
    the oracle's step/cycle watchdogs instead).  ``bug`` applies a named
    :mod:`repro.fuzz.bugs` fixture in every worker and every shrink
    evaluation.  Every oracle-reproducible unique failure is written to
    ``corpus_dir`` as a repro record, shrunk or not.
    """
    seed_list = sorted(set(int(s) for s in seeds))
    profile = profile or GeneratorProfile()
    profile_record = profile.as_record()
    specs = [
        fuzz_spec(seed, mode, check_invariants, max_cycles)
        for seed in seed_list
    ]
    executor = CampaignExecutor(
        jobs=jobs,
        timeout=budget if jobs else None,
        retries=1,
        task=partial(
            execute_fuzz_spec, profile_record=profile_record, bug=bug
        ),
    )
    run_outcomes = executor.run(specs, checkpoint=checkpoint, resume=resume)

    counts = {status: 0 for status in STATUSES}
    by_signature: dict[str, list[tuple[int, OracleOutcome, bool]]] = {}
    for spec, run_outcome in zip(specs, run_outcomes):
        oracle, synthetic = _outcome_of(run_outcome)
        counts[oracle.status] += 1
        if oracle.status != PASS:
            assert oracle.signature is not None
            by_signature.setdefault(oracle.signature, []).append(
                (spec.seed, oracle, synthetic)
            )

    unique_failures = []
    for signature in sorted(by_signature):
        group = sorted(by_signature[signature], key=lambda item: item[0])
        rep_seed, rep_outcome, synthetic = group[0]
        entry: dict = {
            "signature": signature,
            "status": rep_outcome.status,
            "detail": rep_outcome.detail,
            "seeds": [seed for seed, _, _ in group],
            "representative": rep_seed,
            "shrunk": False,
            "instructions": None,
            "record": None,
        }
        if not synthetic:
            entry.update(
                _reduce_and_record(
                    signature,
                    rep_seed,
                    rep_outcome,
                    mode,
                    check_invariants,
                    max_cycles,
                    profile,
                    profile_record,
                    bug,
                    shrink,
                    shrink_budget,
                    corpus_dir,
                )
            )
        unique_failures.append(entry)

    return {
        "schema": REPORT_SCHEMA,
        "mode": mode,
        "check_invariants": check_invariants,
        "profile": profile_record,
        "seeded_bug": bug,
        "seeds": seed_list,
        "num_seeds": len(seed_list),
        "counts": counts,
        "num_unique_failures": len(unique_failures),
        "unique_failures": unique_failures,
    }


def _reduce_and_record(
    signature: str,
    rep_seed: int,
    rep_outcome: OracleOutcome,
    mode: str,
    check_invariants: int,
    max_cycles: int,
    profile: GeneratorProfile,
    profile_record: dict,
    bug: str | None,
    shrink: bool,
    shrink_budget: int,
    corpus_dir: Path | None,
) -> dict:
    """Shrink one unique failure's representative; write its record."""
    generated = generate_program(rep_seed, profile)
    source = generated.source
    instructions = generated.num_instructions
    shrunk = False
    final_outcome = rep_outcome
    if shrink:
        try:
            result = shrink_source(
                source,
                rep_outcome.shrink_key,
                mode=mode,
                check_invariants=check_invariants,
                max_cycles=max_cycles,
                bug=bug,
                budget=shrink_budget,
            )
        except ValueError:
            # The worker's failure does not reproduce here (e.g. an
            # environment-dependent crash): keep the full program so
            # the record still carries everything the worker saw.
            pass
        else:
            source = result.source
            instructions = result.num_instructions
            shrunk = result.reduced
            final_outcome = result.outcome
    name = record_name(signature, rep_seed)
    record = make_repro_record(
        name=name,
        seed=rep_seed,
        source=source,
        signature=final_outcome.signature or signature,
        outcome=final_outcome,
        mode=mode,
        check_invariants=check_invariants,
        profile_record=profile_record,
        config_digest=fuzz_spec(
            rep_seed, mode, check_invariants, max_cycles
        ).config_digest(),
        num_instructions=instructions,
        shrunk=shrunk,
        seeded_bug=bug,
    )
    path = write_record(record, corpus_dir)
    return {
        "shrunk": shrunk,
        "instructions": instructions,
        "record": path.name,
        # The triage signature stays the dedup key; the minimized
        # program's own signature may have shifted location indices.
        "final_signature": final_outcome.signature or signature,
    }
