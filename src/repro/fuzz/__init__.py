"""Seeded workload fuzzer: generation, differential oracles, triage.

The scenario space of the reproduction was 17 hand-written kernels;
this package makes it unbounded and self-triaging:

* :mod:`repro.fuzz.generator` — seeded random micro-ISA programs with
  tunable control-flow knobs, lint-gated;
* :mod:`repro.fuzz.oracle` — golden interpreter vs cycle-exact
  pipeline differential classification (pass / divergence / invariant
  / hang / crash);
* :mod:`repro.fuzz.shrink` — delta-debugging minimization preserving
  the failure signature;
* :mod:`repro.fuzz.campaign` — seed fan-out on the harness
  :class:`~repro.harness.executor.CampaignExecutor`, signature-dedup
  triage, repro-record emission;
* :mod:`repro.fuzz.corpus` — self-contained JSON repro records under
  ``benchmarks/fuzz/``, exposed as ``fuzz/<name>`` regression
  workloads;
* :mod:`repro.fuzz.bugs` — seeded-bug fixtures proving the oracle and
  shrinker actually catch broken pipeline semantics.

CLI: ``repro fuzz --seeds N [--shrink/--no-shrink] [--jobs J] ...``.
"""

from .bugs import SEEDED_BUGS, seeded_bug
from .campaign import execute_fuzz_spec, fuzz_spec, run_fuzz_campaign
from .corpus import (
    corpus_names,
    default_corpus_dir,
    load_corpus,
    load_record,
    make_corpus_workload,
    replay_record,
    write_record,
)
from .generator import (
    FuzzGenerationError,
    GeneratedProgram,
    GeneratorProfile,
    generate_program,
    generate_source,
)
from .oracle import STATUSES, OracleOutcome, classify_source
from .shrink import ShrinkResult, shrink_source

__all__ = [
    "SEEDED_BUGS",
    "seeded_bug",
    "execute_fuzz_spec",
    "fuzz_spec",
    "run_fuzz_campaign",
    "corpus_names",
    "default_corpus_dir",
    "load_corpus",
    "load_record",
    "make_corpus_workload",
    "replay_record",
    "write_record",
    "FuzzGenerationError",
    "GeneratedProgram",
    "GeneratorProfile",
    "generate_program",
    "generate_source",
    "STATUSES",
    "OracleOutcome",
    "classify_source",
    "ShrinkResult",
    "shrink_source",
]
