"""CRISP/IBDA-style critical-slice prioritization (paper §II prior work)."""

from .config import CrispConfig
from .controller import CrispController

__all__ = ["CrispConfig", "CrispController"]
