"""Configuration for the CRISP/IBDA prior-work baseline."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CrispConfig:
    """Critical-slice identification + backend prioritization.

    ``chain_capacity`` bounds the instruction-PC table that marks H2P
    dependence-chain instructions (IBDA's per-level discovery walks
    this up one producer level each time the slice executes).
    """

    chain_capacity: int = 512
    # H2P identification (same scheme as the TEA thread).
    h2p_entries: int = 256
    h2p_ways: int = 8
    h2p_counter_max: int = 7
    h2p_threshold: int = 1
    h2p_decrement_period: int = 50_000
