"""CRISP/IBDA: identify H2P dependence-chain instructions via RAT
writer-tagging and prioritize them in the backend scheduler.

This models the prior-work family the paper positions itself against
(§II): *Iterative Backward Dataflow Analysis* (Load Slice Core) tags
each RAT entry with the PC of its last writer; every time an H2P branch
renames, the writers of its sources join the chain-PC table, and —
iteratively — the writers of already-marked instructions' sources join
too, growing the slice one level per encounter.  CRISP then uses such a
slice only for *scheduling priority*: chain uops issue ahead of other
ready uops.

The paper's critique, which this model reproduces, is that the benefit
is limited — chains execute at most a few cycles earlier because they
still fetch at main-thread speed and still pay the full misprediction
flush (no early resolution, no run-ahead).
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.dynamic_uop import DynUop
from ..isa import REG_ZERO
from ..isa.registers import NUM_ARCH_REGS
from ..tea.config import TeaConfig
from ..tea.h2p_table import H2PTable
from .config import CrispConfig


class CrispController:
    """Implements critical-slice prioritization on a pipeline."""

    def __init__(self, pipeline, config: CrispConfig | None = None):
        self.p = pipeline
        self.config = config or CrispConfig()
        cfg = self.config
        self.h2p = H2PTable(
            TeaConfig(
                h2p_entries=cfg.h2p_entries,
                h2p_ways=cfg.h2p_ways,
                h2p_counter_max=cfg.h2p_counter_max,
                h2p_threshold=cfg.h2p_threshold,
                h2p_decrement_period=cfg.h2p_decrement_period,
            )
        )
        # Architectural register -> PC of its last (renamed) writer.
        self.last_writer_pc: list[int | None] = [None] * NUM_ARCH_REGS
        # LRU table of instruction PCs in some H2P dependence chain.
        self.chain_pcs: OrderedDict[int, bool] = OrderedDict()
        self._retire_count = 0
        self.marks = 0
        pipeline.scheduler.priority_fn = self.is_critical

    # ------------------------------------------------------------------
    def is_critical(self, uop: DynUop) -> bool:
        """Scheduler hook: should this uop issue ahead of its elders?"""
        return uop.instr.pc in self.chain_pcs

    def _mark(self, pc: int | None) -> None:
        if pc is None:
            return
        if pc in self.chain_pcs:
            self.chain_pcs.move_to_end(pc)
            return
        if len(self.chain_pcs) >= self.config.chain_capacity:
            self.chain_pcs.popitem(last=False)
        self.chain_pcs[pc] = True
        self.marks += 1

    # ------------------------------------------------------------------
    def on_main_rename(self, uop: DynUop) -> None:
        """RAT writer-tagging + one-level slice growth (IBDA)."""
        instr = uop.instr
        grow = False
        if instr.is_branch and self.h2p.is_h2p(instr.pc):
            grow = True
        elif instr.pc in self.chain_pcs:
            self.chain_pcs.move_to_end(instr.pc)
            grow = True
        if grow:
            for reg in instr.srcs:
                if reg != REG_ZERO:
                    self._mark(self.last_writer_pc[reg])
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        if dst is not None:
            self.last_writer_pc[dst] = instr.pc

    def on_retire(self, uop: DynUop) -> None:
        self._retire_count += 1
        if self._retire_count % self.config.h2p_decrement_period == 0:
            self.h2p.periodic_decrement()
        instr = uop.instr
        if (
            instr.is_branch
            and uop.branch is not None
            and uop.branch.can_mispredict
            and uop.mispredicted
        ):
            self.h2p.record_mispredict(instr.pc)
