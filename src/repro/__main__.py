"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      simulate workloads (one run, or a fault-tolerant campaign;
             ``--follow`` renders live campaign progress, ``--rollup-out``
             writes the aggregated telemetry rollup)
``compare``  simulate one workload under several modes side by side
``stats``    run with full telemetry and print the observability report
             (or summarize a saved ``--events`` JSONL dump)
``profile``  self-profile the cycle kernel: per-stage wall-clock
             attribution (``--gate`` checks the disabled path stays
             untouched and cycle-exact)
``report``   TEA paper metrics: timeliness / efficiency / accuracy per
             H2P branch and in aggregate
``list``     list workloads, scales, and machine modes
``figure``   regenerate one paper figure/table on a workload subset
``bench``    time the cycle kernel (plus the functional engine and
             interpreter rates) and write BENCH_pipeline.json
``sample``   sampled simulation: functional fast-forward to K sample
             points, parallel detailed windows, extrapolated metrics
             with confidence intervals (``--validate`` gates the
             sampled-vs-full error on the pinned matrix)
``lint``     statically lint workload programs (or an assembly file)
``slice``    static backward slices per branch; ``--oracle`` scores the
             dynamic Backward Dataflow Walk against them
``inject``   seeded microarchitectural fault-injection campaign
             (repro.verify); exit 1 if any TEA-side fault corrupts
             architectural state or a corruption lacks attribution
``fuzz``     seeded differential fuzzing campaign (repro.fuzz): random
             lint-clean programs, interpreter-vs-pipeline oracle,
             signature triage, delta-debugging shrinks, repro records;
             exit 1 on any unique failure

Examples::

    python -m repro list
    python -m repro lint --all
    python -m repro lint mcf,xz --scale tiny
    python -m repro lint --source examples/kernel.s
    python -m repro slice bfs
    python -m repro slice bfs --oracle --out ORACLE_slice.json
    python -m repro bench --out BENCH_pipeline.json
    python -m repro bench --check
    python -m repro bench --compare benchmarks/perf/baseline.json
    python -m repro sample bfs --mode tea --scale small --jobs 4
    python -m repro sample mcf --windows 8 --warmup 2000 --measure 4000
    python -m repro sample --validate
    python -m repro run bfs --mode tea --scale tiny
    python -m repro run bfs --mode tea --check-invariants 64
    python -m repro inject bfs,xz --kinds tea_outcome_flip,wakeup_drop \\
        --seeds 2 --out INJECT_report.json
    python -m repro run mcf --mode tea --trace-out trace.json
    python -m repro run bfs,mcf,xz --modes baseline,tea --jobs 4 \\
        --timeout 600 --checkpoint campaign.jsonl
    python -m repro run bfs,mcf,xz --modes baseline,tea --jobs 4 \\
        --checkpoint campaign.jsonl --resume
    python -m repro run bfs,mcf,xz --modes baseline,tea --jobs 4 \\
        --follow --rollup-out ROLLUP.json
    python -m repro stats mcf --mode tea --top 10
    python -m repro stats mcf --events events.jsonl
    python -m repro profile xz --mode tea --out PROFILE_xz.json
    python -m repro profile xz --mode tea --gate
    python -m repro report bfs,mcf,xz --mode tea --out TEA_report.json
    python -m repro compare mcf --modes baseline,tea,runahead
    python -m repro figure fig8 --workloads bfs,mcf,xz --scale tiny
    python -m repro figure fig5 --scale tiny --jobs 4 --resume \\
        --checkpoint fig5.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys

from .harness import (
    CampaignExecutor,
    ExperimentSuite,
    FIGURE_MODES,
    MODES,
    RunSpec,
    run_workload,
    speedup_percent,
    summarize_outcomes,
)
from .obs import Observation
from .workloads import make_category, workload_names


def _cmd_list(_args) -> int:
    print("workloads (paper evaluation suite):")
    for name in workload_names():
        print(f"  {name:12s} [{make_category(name)} control flow]")
    print("\nscales: tiny, bench, full (+ small for bfs/cc/sssp/pr)")
    print("modes:  " + ", ".join(MODES))
    print("\nfigures: fig5 fig6 fig7 fig8 fig9 fig10 table3")
    return 0


def _print_stats(result) -> None:
    stats = result.stats
    print(f"  IPC               {stats.ipc:.3f}")
    print(f"  cycles            {stats.cycles}")
    print(f"  instructions      {stats.retired_instructions}")
    print(f"  MPKI              {stats.mpki:.2f}")
    print(f"  flushes           {stats.flushes}")
    if stats.tea_resolved_branches:
        print(f"  early flushes     {stats.early_flushes}")
        print(f"  coverage          {100 * stats.coverage:.1f}%")
        print(f"  accuracy          {100 * stats.tea_accuracy:.2f}%")
        print(f"  avg cycles saved  {stats.avg_cycles_saved:.1f}")
    if stats.runahead_overrides:
        print(f"  BR overrides      {stats.runahead_overrides}"
              f" (wrong: {stats.runahead_wrong_overrides})")
    print(f"  validated         {result.validated}")


def _make_executor(args, observation=None, telemetry=None) -> CampaignExecutor:
    return CampaignExecutor(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        observation=observation,
        telemetry=telemetry,
    )


def _print_campaign(outcomes) -> None:
    summary = summarize_outcomes(outcomes)
    print(f"{'run':28s}{'status':>10s}{'IPC':>8s}{'att':>5s}{'res':>5s}")
    for outcome in outcomes:
        ipc = f"{outcome.sim_stats().ipc:.3f}" if outcome.ok else "-"
        resumed = "yes" if outcome.resumed else ""
        print(
            f"{outcome.key:28s}{outcome.status:>10s}{ipc:>8s}"
            f"{outcome.attempts:>5d}{resumed:>5s}"
        )
    print(
        f"\n{summary['ok']}/{summary['total']} ok, "
        f"{summary['failed']} failed, {summary['timeout']} timed out, "
        f"{summary['resumed']} resumed from checkpoint, "
        f"{summary['retried']} needed retries"
    )
    for key, kind in summary["failed_cells"].items():
        print(f"  FAILED({kind}): {key}")


def _cmd_run(args) -> int:
    workloads = args.workload.split(",")
    modes = args.modes.split(",") if args.modes else [args.mode]
    campaign = (
        len(workloads) > 1
        or len(modes) > 1
        or args.jobs != 1
        or args.checkpoint
        or args.resume
        or args.follow
        or args.rollup_out
    )
    if campaign:
        if args.jobs < 0:
            print("--jobs must be >= 0", file=sys.stderr)
            return 2
        if args.resume and not args.checkpoint:
            print("--resume requires --checkpoint PATH", file=sys.stderr)
            return 2
        for mode in modes:
            if mode not in MODES:
                print(f"unknown mode {mode!r}", file=sys.stderr)
                return 2
        specs = [
            RunSpec(
                workload=w,
                mode=m,
                scale=args.scale,
                check_invariants=args.check_invariants,
            )
            for w in workloads
            for m in modes
        ]
        telemetry = None
        view = None
        if args.follow or args.rollup_out:
            from .obs import CampaignProgressView, TelemetryAggregator

            if args.follow:
                view = CampaignProgressView(specs)
            telemetry = TelemetryAggregator(
                jobs=max(1, args.jobs),
                on_update=view.render if view is not None else None,
            )
        executor = _make_executor(
            args, observation=Observation(), telemetry=telemetry
        )
        outcomes = executor.run(
            specs, checkpoint=args.checkpoint, resume=args.resume
        )
        if view is not None:
            view.finish(telemetry)
        if args.rollup_out:
            with open(args.rollup_out, "w") as fh:
                json.dump(telemetry.rollup(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote campaign rollup to {args.rollup_out}")
        _print_campaign(outcomes)
        return 0 if all(o.ok for o in outcomes) else 1
    observe = bool(args.events_out or args.trace_out or args.stats_out)
    result = run_workload(
        args.workload,
        args.mode,
        args.scale,
        observe=observe,
        check_invariants=args.check_invariants,
    )
    print(f"{args.workload} under {args.mode} ({args.scale} scale):")
    _print_stats(result)
    obs = result.observation
    if obs is not None:
        if args.events_out:
            count = obs.write_events_jsonl(args.events_out)
            print(f"  wrote {count} events to {args.events_out}")
        if args.trace_out:
            trace = obs.write_chrome_trace(args.trace_out)
            print(f"  wrote {len(trace['traceEvents'])} trace events to "
                  f"{args.trace_out} (open in ui.perfetto.dev)")
        if args.stats_out:
            obs.write_metrics_snapshot(args.stats_out, result.stats)
            print(f"  wrote metrics snapshot to {args.stats_out}")
    return 0


def _summarize_events_file(args) -> int:
    """``repro stats --events``: summarize a saved JSONL event dump.

    Fails with a clear one-line error — never a traceback — on a
    missing, empty, or interior-corrupt file; a partial *trailing* line
    (crash mid-append) is tolerated and dropped.
    """
    import os
    import warnings

    from .obs import read_events_jsonl

    path = args.events
    if not os.path.exists(path):
        print(f"stats: events file not found: {path}", file=sys.stderr)
        return 2
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = read_events_jsonl(path, tolerant=True)
    except ValueError as exc:
        print(f"stats: cannot read events file: {exc}", file=sys.stderr)
        return 1
    for warning in caught:
        print(f"stats: warning: {warning.message}", file=sys.stderr)
    if not records:
        print(f"stats: events file is empty: {path}", file=sys.stderr)
        return 1
    counts: dict[str, int] = {}
    for record in records:
        type_ = record.get("type", "?")
        counts[type_] = counts.get(type_, 0) + 1
    cycles = [r["cycle"] for r in records if "cycle" in r]
    if args.json:
        print(json.dumps(
            {
                "path": path,
                "events": len(records),
                "first_cycle": min(cycles) if cycles else None,
                "last_cycle": max(cycles) if cycles else None,
                "by_type": dict(sorted(counts.items())),
            },
            indent=2, sort_keys=True,
        ))
        return 0
    span = ""
    if cycles:
        span = f" over cycles {min(cycles)}..{max(cycles)}"
    print(f"{path}: {len(records)} events{span}")
    for type_, count in sorted(counts.items()):
        print(f"  {type_:20s} {count:8d}")
    return 0


def _cmd_stats(args) -> int:
    if args.events:
        return _summarize_events_file(args)
    if not args.workload:
        print("stats: give a workload name or --events PATH", file=sys.stderr)
        return 2
    result = run_workload(args.workload, args.mode, args.scale, observe=True)
    obs = result.observation
    if args.json:
        print(json.dumps(obs.metrics_snapshot(result.stats), indent=2,
                         sort_keys=True))
        return 0
    print(f"{args.workload} under {args.mode} ({args.scale} scale):")
    _print_stats(result)
    print("\nevent counts:")
    for type_, count in obs.event_type_counts().items():
        print(f"  {type_:20s} {count:8d}")
    snapshot = obs.metrics.snapshot()
    populated = {
        name: h for name, h in snapshot["histograms"].items() if h["count"]
    }
    if populated:
        print("\nhistograms:")
        for name, hist in populated.items():
            print(f"  {name}: n={hist['count']} mean={hist['mean']:.1f} "
                  f"min={hist['min']} max={hist['max']}")
    print()
    print(obs.attribution.report(args.top))
    return 0


def _cmd_profile(args) -> int:
    from .obs import validate_chrome_trace, write_metrics_snapshot

    result = run_workload(
        args.workload, args.mode, args.scale, profile=True
    )
    profiler = result.profiler
    report = profiler.report()
    print(f"{args.workload} under {args.mode} ({args.scale} scale): "
          f"{report['steps']} steps, {report['total_ns'] / 1e6:.1f} ms "
          f"in the step loop ({report['ns_per_step']:.0f} ns/step)")
    rows = sorted(report["buckets"].items(), key=lambda kv: -kv[1]["ns"])
    print(f"  {'bucket':18s}{'ms':>10s}{'%':>7s}{'calls':>12s}")
    for name, bucket in rows:
        print(f"  {name:18s}{bucket['ns'] / 1e6:10.2f}"
              f"{100 * bucket['frac']:6.1f}%{bucket['calls']:12d}")
    if args.out:
        write_metrics_snapshot(profiler.flat(), args.out)
        print(f"wrote profile snapshot to {args.out}")
    if args.trace_out:
        trace = profiler.to_chrome_trace()
        validate_chrome_trace(trace)
        with open(args.trace_out, "w") as fh:
            json.dump(trace, fh)
        print(f"wrote {len(trace['traceEvents'])} profiler trace events to "
              f"{args.trace_out} (open in ui.perfetto.dev)")
    if args.gate:
        # Overhead gate, two halves:
        # 1. cycle-exactness — a profiled run must report identical
        #    SimStats to an unprofiled one;
        # 2. structural zero cost — an unprofiled pipeline must keep
        #    its untouched class methods (no wrapper in __dict__).
        plain = run_workload(args.workload, args.mode, args.scale)
        if plain.stats.as_dict() != result.stats.as_dict():
            print("GATE FAIL: profiled run diverged from unprofiled stats",
                  file=sys.stderr)
            return 1
        from .core import Pipeline
        from .harness import make_config
        from .workloads import make_workload

        workload = make_workload(args.workload, args.scale)
        pipeline = Pipeline(
            workload.program, workload.fresh_memory(), make_config(args.mode)
        )
        pipeline.run(max_cycles=1000)
        shadowed = [
            attr for attr in ("step", "_retire", "_fetch", "_schedule")
            if attr in pipeline.__dict__
        ]
        if pipeline.profiler is not None or shadowed:
            print(f"GATE FAIL: unprofiled pipeline carries profiler "
                  f"wrappers: {shadowed}", file=sys.stderr)
            return 1
        print("gate: profiled run cycle-exact; disabled path untouched")
    return 0


def _cmd_report(args) -> int:
    from .obs import build_tea_report, render_tea_report

    workloads = args.workloads.split(",")
    reports: dict[str, dict] = {}
    for workload in workloads:
        print(f"simulating {workload}/{args.mode} ...", file=sys.stderr)
        result = run_workload(workload, args.mode, args.scale, observe=True)
        obs = result.observation
        reports[workload] = build_tea_report(
            result.stats,
            obs.attribution,
            obs.events,
            workload=workload,
            mode=args.mode,
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(reports, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote TEA report to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        for workload in workloads:
            print(render_tea_report(reports[workload], top=args.top))
            print()
    mismatched = [
        w for w, r in reports.items() if not r["reconciliation"]["exact"]
    ]
    for workload in mismatched:
        print(f"RECONCILIATION MISMATCH: {workload} attribution vs SimStats",
              file=sys.stderr)
    return 1 if mismatched else 0


def _cmd_compare(args) -> int:
    modes = args.modes.split(",")
    results = {}
    for mode in modes:
        print(f"simulating {mode} ...", file=sys.stderr)
        results[mode] = run_workload(args.workload, mode, args.scale)
    base_ipc = results.get("baseline")
    base_ipc = base_ipc.ipc if base_ipc else results[modes[0]].ipc
    print(f"\n{args.workload} ({args.scale} scale):")
    print(f"{'mode':20s}{'IPC':>8s}{'MPKI':>8s}{'speedup':>10s}")
    for mode in modes:
        stats = results[mode].stats
        pct = speedup_percent(stats.ipc, base_ipc)
        print(f"{mode:20s}{stats.ipc:8.3f}{stats.mpki:8.1f}{pct:+9.1f}%")
    return 0


def _cmd_figure(args) -> int:
    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    executor = None
    if args.jobs != 1 or args.checkpoint or args.resume:
        if args.jobs < 0:
            print("--jobs must be >= 0", file=sys.stderr)
            return 2
        if args.resume and not args.checkpoint:
            print("--resume requires --checkpoint PATH", file=sys.stderr)
            return 2
        executor = _make_executor(args, observation=Observation())
    suite = ExperimentSuite(
        scale=args.scale, workloads=workloads, executor=executor
    )
    if executor is not None and args.name in FIGURE_MODES:
        suite.run_matrix(
            FIGURE_MODES[args.name],
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    renderers = {
        "fig5": suite.render_fig5,
        "fig6": suite.render_fig6,
        "fig7": suite.render_fig7,
        "fig8": suite.render_fig8,
        "fig9": suite.render_fig9,
        "fig10": suite.render_fig10,
        "table3": suite.render_table3,
    }
    try:
        renderer = renderers[args.name]
    except KeyError:
        print(f"unknown figure {args.name!r}; one of {sorted(renderers)}",
              file=sys.stderr)
        return 2
    print(renderer())
    return 0


def _cmd_bench(args) -> int:
    from .harness.bench import (
        PINNED_RUNS,
        compare_reports,
        load_report,
        run_bench,
        write_report,
    )

    if args.workloads or args.modes:
        workloads = (args.workloads or "bfs,mcf,xz").split(",")
        modes = (args.modes or "baseline,tea").split(",")
        runs = tuple((w, m) for w in workloads for m in modes)
    else:
        runs = PINNED_RUNS
    if args.check:
        # Smoke mode: one cell, one repetition -- proves the bench
        # path works without paying for the full matrix.
        runs = runs[:1]
        args.repeat = 1

    def progress(cell):
        print(
            f"  {cell['workload']:>8s}/{cell['mode']:<14s}"
            f"{cell['cycles_per_sec']:>12,.0f} cyc/s"
            f"{cell['uops_per_sec']:>14,.0f} uops/s"
            f"  ipc={cell['ipc']:.3f}",
            file=sys.stderr,
        )

    print(f"timing cycle kernel ({len(runs)} cells, "
          f"repeat={args.repeat}, scale={args.scale}) ...", file=sys.stderr)
    report = run_bench(runs, scale=args.scale, repeat=args.repeat,
                       progress=progress)
    print(f"geomean: {report['geomean_cycles_per_sec']:,.0f} cyc/s, "
          f"{report['geomean_uops_per_sec']:,.0f} uops/s "
          f"(calibrated {report['calibrated_cycles_per_sec']:,.1f}; host "
          f"{report['host']['calibration_mops']:.1f} Mops)")
    functional = report.get("functional") or {}
    for row in functional.get("rows", ()):
        speedup = row["speedup_vs_detailed"]
        print(
            f"  functional {row['workload']:>8s}"
            f"{row['functional_instr_per_sec']:>14,.0f} instr/s"
            f"  interp {row['interpreter_instr_per_sec']:>12,.0f}"
            + (f"  {speedup:,.0f}x detailed" if speedup else ""),
            file=sys.stderr,
        )
    if functional.get("geomean_speedup_vs_detailed"):
        print(
            f"functional engine: "
            f"{functional['geomean_functional_instr_per_sec']:,.0f} instr/s "
            f"geomean, {functional['geomean_speedup_vs_detailed']:,.0f}x "
            f"the detailed kernel"
        )
    sampling = report.get("sampling") or {}
    if sampling.get("geomean_speedup"):
        print(
            f"sampling fast-forward: one-pass capture "
            f"{sampling['geomean_speedup']:.2f}x the two-pass pipeline"
        )
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.compare:
        baseline = load_report(args.compare)
        cmp = compare_reports(report, baseline)
        print(
            f"vs {args.compare}: {cmp['speedup']:.2f}x calibrated "
            f"({cmp['current']:,.1f} vs {cmp['baseline']:,.1f}), "
            f"{cmp['raw_speedup']:.2f}x raw"
        )
        floor = 1.0 - args.tolerance
        if cmp["speedup"] < floor:
            print(
                f"FAIL: calibrated throughput regressed more than "
                f"{args.tolerance:.0%} vs baseline", file=sys.stderr
            )
            return 1
    return 0


def _cmd_sample(args) -> int:
    from .sampling import run_sampled, validate_sampling, write_report

    if args.validate:
        # Pinned matrix (bfs/mcf/xz x baseline/tea), pinned knobs; a
        # single workload narrows it to that workload's cells.
        from .sampling.validate import PINNED_RUNS

        cells = PINNED_RUNS
        if args.workload:
            cells = tuple(
                (w, m) for w, m in PINNED_RUNS if w == args.workload
            ) or tuple((args.workload, m) for m in ("baseline", "tea"))
        print(f"validating sampled vs full detailed runs "
              f"({len(cells)} cells) ...", file=sys.stderr)
        report = validate_sampling(
            cells=cells,
            scale=args.scale,
            jobs=args.jobs,
            seed=args.seed,
        )
        for cell in report["cells"]:
            flag = "ok" if cell["ipc_ok"] and cell["mpki_ok"] else "FAIL"
            print(
                f"  {cell['workload']:>8s}/{cell['mode']:<9s}"
                f" ipc {cell['sampled']['ipc']:.4f} vs "
                f"{cell['full']['ipc']:.4f} "
                f"({cell['ipc_rel_error']:.1%})"
                f"  mpki {cell['sampled']['mpki']:.2f} vs "
                f"{cell['full']['mpki']:.2f} "
                f"({cell['mpki_rel_error']:.1%})  {flag}"
            )
        summary = report["summary"]
        print(
            f"worst error: ipc {summary['worst_ipc_rel_error']:.1%}, "
            f"mpki {summary['worst_mpki_rel_error']:.1%} "
            f"({summary['cells']} cells)"
        )
        if args.out:
            write_report(report, args.out)
            print(f"wrote {args.out}")
        if not report["ok"]:
            print("FAIL: sampled estimates outside tolerance",
                  file=sys.stderr)
            return 1
        return 0

    if not args.workload:
        print("error: sample requires a workload (or --validate)",
              file=sys.stderr)
        return 2
    report = run_sampled(
        args.workload,
        mode=args.mode,
        scale=args.scale,
        windows=args.windows,
        warmup=args.warmup,
        measure=args.measure,
        jobs=args.jobs,
        seed=args.seed,
        placement=args.placement,
    )
    est = report["estimates"]
    total = report["functional"]["total_instructions"]
    captured = report["functional"]["captured"]
    measured = sum(w["instructions"] for w in report["windows"])
    print(
        f"{args.workload}/{args.mode} @ {args.scale}: "
        f"{captured} windows over {total:,} instructions "
        f"({measured / total:.1%} measured in detail)"
    )

    def fmt(name: str) -> str:
        metric = est[name]
        value = metric["value"]
        if value is None:
            return f"{name} n/a"
        ci = metric.get("ci95")
        tail = f" +/- {ci:.4f}" if ci is not None else ""
        return f"{name} {value:.4f}{tail}"

    print("  " + "  ".join(
        fmt(name) for name in ("ipc", "mpki", "tea_accuracy", "tea_coverage")
    ))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_lint(args) -> int:
    from .analysis import lint_program
    from .workloads import lint_workload, workload_names

    reports = {}
    if args.source:
        from .isa.data_directives import assemble_unit

        with open(args.source) as fh:
            source = fh.read()
        reports[args.source] = lint_program(assemble_unit(source).program)
    elif args.all:
        from .workloads import fuzz_corpus_names, make_workload

        for name in workload_names():
            reports[name] = lint_workload(name, args.scale)
        # Minimized fuzz repro records are registry workloads too; the
        # shrinker tolerates warnings (dead stores) but never errors.
        for name in fuzz_corpus_names():
            reports[name] = lint_program(make_workload(name).program)
    elif args.workload:
        for name in args.workload.split(","):
            reports[name] = lint_workload(name, args.scale)
    else:
        print("lint: give a workload list, --all, or --source FILE",
              file=sys.stderr)
        return 2

    total_errors = total_warnings = 0
    if args.json:
        payload = {
            name: [
                {"rule": f.rule, "severity": f.severity, "pc": f.pc,
                 "line": f.line, "message": f.message}
                for f in report
            ]
            for name, report in reports.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        total_errors = sum(len(r.errors) for r in reports.values())
        return 1 if total_errors else 0
    for name, report in reports.items():
        for finding in report:
            print(finding.render(name))
        total_errors += len(report.errors)
        total_warnings += len(report.warnings)
    print(f"{len(reports)} program(s) linted: "
          f"{total_errors} error(s), {total_warnings} warning(s)")
    return 1 if total_errors else 0


def _cmd_slice(args) -> int:
    from .analysis import slice_program
    from .analysis.oracle import render_report, run_slice_oracle
    from .workloads import make_workload

    if args.oracle:
        report = run_slice_oracle(args.workload, args.scale, args.mode)
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
            print(f"wrote oracle report to {args.out}", file=sys.stderr)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report(report))
        return 0

    slices = slice_program(make_workload(args.workload, args.scale).program)
    wanted = None
    if args.branch is not None:
        pc = int(args.branch, 0)
        if slices.slice_at(pc) is None:
            print(f"no conditional branch at {pc:#x}", file=sys.stderr)
            return 2
        wanted = [pc]
    if args.json:
        payload = {
            f"{pc:#x}": {
                "line": sl.line,
                "size": sl.size,
                "pcs": sorted(sl.pcs),
                "masks": {f"{s:#x}": m for s, m in sorted(sl.masks.items())},
                "has_indirect": sl.has_indirect,
                "through_memory": sl.through_memory,
            }
            for pc, sl in sorted(slices.branches.items())
            if wanted is None or pc in wanted
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.workload} ({args.scale} scale): "
          f"{len(slices.branches)} conditional branches")
    print(f"{'branch':>10s} {'line':>5s} {'size':>5s} {'blocks':>7s}  flags")
    for pc, sl in sorted(slices.branches.items()):
        if wanted is not None and pc not in wanted:
            continue
        flags = []
        if sl.has_indirect:
            flags.append("indirect")
        if sl.through_memory:
            flags.append("mem")
        print(f"{pc:>#10x} {str(sl.line or '-'):>5s} {sl.size:>5d} "
              f"{len(sl.masks):>7d}  {','.join(flags) or '-'}")
    return 0


def _cmd_chains(args) -> int:
    from .analysis.chains import (
        analyze_chains,
        build_chain_report,
        render_chain_report,
        run_chain_oracle,
    )
    from .workloads import make_workload

    # ``fuzz`` / ``fuzz/*`` folds every corpus repro record into the
    # static classification sweep (same expansion as ``repro inject``).
    expanded: list[str] = []
    for name in args.workload.split(","):
        if name in ("fuzz", "fuzz/*"):
            from .workloads import fuzz_corpus_names

            corpus = fuzz_corpus_names()
            if not corpus:
                print("fuzz corpus is empty; run `repro fuzz` first or "
                      "point REPRO_FUZZ_CORPUS at a record directory",
                      file=sys.stderr)
                return 2
            expanded.extend(corpus)
        else:
            expanded.append(name)

    if args.mask and not args.oracle:
        print("chains: --mask requires --oracle", file=sys.stderr)
        return 2
    if args.mask_out and len(expanded) != 1:
        print("chains: --mask-out wants exactly one workload",
              file=sys.stderr)
        return 2

    reports: dict[str, dict] = {}
    unsound_total = 0
    for name in expanded:
        if args.oracle:
            report = run_chain_oracle(
                name, args.scale, args.mode, use_mask=args.mask
            )
            unsound_total += report["soundness"]["unsound_total"]
        else:
            chains = analyze_chains(
                make_workload(name, args.scale).program
            )
            report = build_chain_report(chains, workload=name)
        reports[name] = report

    payload = reports[expanded[0]] if len(expanded) == 1 else reports
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote chain report to {args.out}", file=sys.stderr)
    if args.mask_out:
        report = reports[expanded[0]]
        with open(args.mask_out, "w") as fh:
            json.dump(
                {
                    "workload": expanded[0],
                    "scale": args.scale,
                    "branch_mask": report["allow_mask"],
                },
                fh, indent=2, sort_keys=True,
            )
        print(f"wrote allow mask to {args.mask_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports.values():
            print(render_chain_report(report))
    return 1 if unsound_total else 0


def _cmd_inject(args) -> int:
    from .verify import FAULT_KINDS, run_fault_campaign

    # ``fuzz`` / ``fuzz/*`` folds every corpus repro record into the
    # matrix; individual ``fuzz/<stem>`` names pass through directly.
    expanded: list[str] = []
    for name in args.workloads.split(","):
        if name in ("fuzz", "fuzz/*"):
            from .workloads import fuzz_corpus_names

            corpus = fuzz_corpus_names()
            if not corpus:
                print("fuzz corpus is empty; run `repro fuzz` first or "
                      "point REPRO_FUZZ_CORPUS at a record directory",
                      file=sys.stderr)
                return 2
            expanded.extend(corpus)
        else:
            expanded.append(name)
    workloads = tuple(expanded)
    kinds = tuple(args.kinds.split(",")) if args.kinds else None
    if kinds:
        unknown = sorted(set(kinds) - set(FAULT_KINDS))
        if unknown:
            print(f"unknown fault kind(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(sorted(FAULT_KINDS))}",
                  file=sys.stderr)
            return 2

    def progress(cell):
        key = f"{cell['workload']}/{cell['kind']}/seed{cell['seed']}"
        print(f"  {key:40s} {cell['outcome']}", file=sys.stderr)

    n_kinds = len(kinds) if kinds else len(FAULT_KINDS)
    print(f"fault campaign: {len(workloads)} workload(s) x {n_kinds} "
          f"kind(s) x {args.seeds} seed(s), mode={args.mode}, "
          f"scale={args.scale} ...", file=sys.stderr)
    report = run_fault_campaign(
        workloads=workloads,
        kinds=kinds,
        seeds=args.seeds,
        mode=args.mode,
        scale=args.scale,
        check_invariants=args.check_invariants,
        max_cycles=args.max_cycles,
        start_cycle=args.start_cycle,
        progress=progress,
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote fault-campaign report to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        summary = report["summary"]
        print(f"{summary['total']} cells "
              f"({summary['applied']} with a fault applied): "
              f"{summary['detected_invariant']} invariant-detected, "
              f"{summary['detected_watchdog']} watchdog-detected, "
              f"{summary['benign']} benign, "
              f"{summary['corrupted']} corrupted, "
              f"{summary['not_applied']} not applied")
        for key in report["unsafe_corruptions"]:
            print(f"  UNSAFE (TEA/timing fault corrupted state): {key}")
        for key in report["unattributed_corruptions"]:
            print(f"  UNATTRIBUTED corruption (no fault context): {key}")
        for key in report["undetected_cells"]:
            print(f"  note: expected-detect fault ran benign: {key}")
        print("ok" if report["ok"] else "NOT OK")
    return 0 if report["ok"] else 1


def _cmd_fuzz(args) -> int:
    import dataclasses
    from pathlib import Path

    from .fuzz import GeneratorProfile, run_fuzz_campaign

    profile = GeneratorProfile()
    if args.knobs:
        overrides = {}
        fields = {f.name: f.type for f in dataclasses.fields(profile)}
        for pair in args.knobs.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or key not in fields:
                print(f"fuzz: unknown knob {key!r}; choose from "
                      f"{', '.join(sorted(fields))}", file=sys.stderr)
                return 2
            overrides[key] = (float(value) if "float" in str(fields[key])
                              else int(value))
        profile = dataclasses.replace(profile, **overrides)

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    corpus = Path(args.corpus) if args.corpus else None
    checkpoint = Path(args.checkpoint) if args.checkpoint else None
    print(f"fuzz campaign: {args.seeds} seed(s) from {args.seed_base}, "
          f"mode={args.mode}, jobs={args.jobs}, "
          f"shrink={'on' if args.shrink else 'off'}"
          + (f", seeded bug={args.seeded_bug}" if args.seeded_bug else "")
          + " ...", file=sys.stderr)
    report = run_fuzz_campaign(
        seeds,
        mode=args.mode,
        check_invariants=args.check_invariants,
        jobs=args.jobs,
        budget=args.budget,
        shrink=args.shrink,
        shrink_budget=args.shrink_budget,
        corpus_dir=corpus,
        profile=profile,
        bug=args.seeded_bug,
        checkpoint=checkpoint,
        resume=args.resume,
        max_cycles=args.max_cycles,
    )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote fuzz report to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        counts = report["counts"]
        print(f"{report['num_seeds']} seed(s): "
              + ", ".join(f"{counts[s]} {s}" for s in counts))
        for entry in report["unique_failures"]:
            shrunk = (f"shrunk to {entry['instructions']} instruction(s)"
                      if entry["shrunk"] else "not shrunk")
            record = (f", record {entry['record']}"
                      if entry["record"] else "")
            print(f"  {entry['signature']}: {len(entry['seeds'])} seed(s), "
                  f"representative {entry['representative']}, "
                  f"{shrunk}{record}")
        print("ok" if not report["num_unique_failures"]
              else f"NOT OK: {report['num_unique_failures']} "
                   f"unique failure(s)")
    return 1 if report["num_unique_failures"] else 0


def _cmd_serve(args) -> int:
    import os
    from pathlib import Path

    from .service import run_service
    from .service.chaos import CHAOS_ENV, chaos_execute_spec
    from .service.server import ServiceConfig

    task = None
    chaos_dir = None
    if args.chaos_dir:
        # Arm the chaos worker task: the env var rides fork/spawn into
        # every worker process the executor launches.
        chaos_dir = Path(args.chaos_dir)
        os.environ[CHAOS_ENV] = str(chaos_dir)
        task = chaos_execute_spec
    config = ServiceConfig(
        state_dir=Path(args.state_dir),
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        run_timeout=args.run_timeout,
        retries=args.retries,
        backoff=args.backoff,
        jitter=args.jitter,
        drain_deadline=args.drain_deadline,
        heartbeat_timeout=args.heartbeat_timeout,
        chaos_dir=chaos_dir,
    )
    print(f"serve: state dir {config.state_dir}, "
          f"{config.workers} worker(s), queue depth {config.queue_depth}"
          + (f", chaos dir {chaos_dir}" if chaos_dir else ""),
          file=sys.stderr)
    return run_service(config, task=task)


def _client_from_args(args):
    from .service import ServiceClient

    if args.state_dir:
        return ServiceClient.from_endpoint(args.state_dir)
    return ServiceClient(args.host, args.port)


def _cmd_submit(args) -> int:
    record = {
        "workloads": args.workloads,
        "modes": args.modes,
        "scale": args.scale,
        "seed": args.seed,
        "max_cycles": args.max_cycles,
        "check_invariants": args.check_invariants,
        "priority": args.priority,
    }
    if args.fault_kind:
        record["fault_kind"] = args.fault_kind
        record["fault_seed"] = args.fault_seed
    if args.token:
        record["token"] = args.token
    client = _client_from_args(args)
    response = client.submit(record, deadline=args.deadline)
    print(json.dumps(response, indent=2, sort_keys=True))
    if args.wait:
        summary = client.wait(response["id"], timeout=args.deadline)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary["state"] == "done" else 1
    return 0


def _cmd_status(args) -> int:
    client = _client_from_args(args)
    if args.job_id:
        payload = client.status(args.job_id)
    else:
        payload = {"jobs": client.jobs(), "metrics": client.metrics()}
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_fetch(args) -> int:
    client = _client_from_args(args)
    report = client.result_bytes(args.job_id)
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(report)
        print(f"wrote {len(report)} bytes to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(report.decode())
    return 0


def _cmd_chaos(args) -> int:
    from .service import run_chaos_campaign

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    report = run_chaos_campaign(
        args.state_dir,
        seed=args.seed,
        kill_after_jobs=args.kill_after_jobs,
        run_timeout=args.run_timeout,
        log=log,
    )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote chaos report to {args.report}", file=sys.stderr)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TEA branch-precomputation reproduction (MICRO 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, scales, modes").set_defaults(
        func=_cmd_list
    )

    def add_executor_options(p) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = inline, no isolation)")
        p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-run wall-clock limit; over-limit workers "
                            "are terminated and the cell marked timeout")
        p.add_argument("--retries", type=int, default=2, metavar="N",
                       help="retry budget for retryable failures")
        p.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="JSONL journal of completed runs")
        p.add_argument("--resume", action="store_true",
                       help="skip runs already in the checkpoint journal")

    p_run = sub.add_parser(
        "run", help="simulate workloads (a campaign when several)"
    )
    p_run.add_argument("workload",
                       help="workload name, or comma-separated list for a "
                            "fault-tolerant campaign")
    p_run.add_argument("--mode", default="baseline", choices=MODES)
    p_run.add_argument("--modes", default=None,
                       help="comma-separated machine modes (campaign matrix)")
    p_run.add_argument("--scale", default="tiny")
    p_run.add_argument("--events-out", default=None, metavar="PATH",
                       help="write the telemetry event stream as JSONL")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace_event JSON (Perfetto)")
    p_run.add_argument("--stats-out", default=None, metavar="PATH",
                       help="write a flat JSON metrics snapshot")
    p_run.add_argument("--check-invariants", type=int, default=0, metavar="N",
                       help="audit machine invariants every N cycles "
                            "(0 = off; disables idle fast-forward)")
    p_run.add_argument("--follow", action="store_true",
                       help="live campaign progress: in-place matrix "
                            "rendering with ETA (enables telemetry)")
    p_run.add_argument("--rollup-out", default=None, metavar="PATH",
                       help="write the aggregated campaign telemetry "
                            "rollup JSON (enables telemetry)")
    add_executor_options(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_stats = sub.add_parser(
        "stats", help="run with telemetry and print the full report"
    )
    p_stats.add_argument("workload", nargs="?", default=None)
    p_stats.add_argument("--mode", default="tea", choices=MODES)
    p_stats.add_argument("--scale", default="tiny")
    p_stats.add_argument("--top", type=int, default=10,
                         help="rows in the per-branch offender table")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the flat metrics snapshot as JSON")
    p_stats.add_argument("--events", default=None, metavar="PATH",
                         help="summarize a saved JSONL event dump instead "
                              "of running a simulation")
    p_stats.set_defaults(func=_cmd_stats)

    p_prof = sub.add_parser(
        "profile", help="per-stage wall-clock self-profile of one run"
    )
    p_prof.add_argument("workload")
    p_prof.add_argument("--mode", default="tea", choices=MODES)
    p_prof.add_argument("--scale", default="tiny")
    p_prof.add_argument("--out", default=None, metavar="PATH",
                        help="write the flat profile.* JSON snapshot")
    p_prof.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write Perfetto counter tracks (trace_event)")
    p_prof.add_argument("--gate", action="store_true",
                        help="verify profiled runs stay cycle-exact and the "
                             "disabled path carries no wrappers; exit 1 on "
                             "violation")
    p_prof.set_defaults(func=_cmd_profile)

    p_rep = sub.add_parser(
        "report", help="TEA timeliness/efficiency/accuracy paper metrics"
    )
    p_rep.add_argument("workloads",
                       help="workload name or comma-separated list")
    p_rep.add_argument("--mode", default="tea", choices=MODES)
    p_rep.add_argument("--scale", default="tiny")
    p_rep.add_argument("--top", type=int, default=10,
                       help="per-branch rows in the rendered table")
    p_rep.add_argument("--out", default=None, metavar="PATH",
                       help="write the per-workload report JSON")
    p_rep.add_argument("--json", action="store_true",
                       help="print the report JSON instead of the table")
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser("compare", help="compare machine modes")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("--modes", default="baseline,tea,runahead")
    p_cmp.add_argument("--scale", default="tiny")
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("name")
    p_fig.add_argument("--workloads", default=None,
                       help="comma-separated subset (default: all 17)")
    p_fig.add_argument("--scale", default="tiny")
    add_executor_options(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_bench = sub.add_parser(
        "bench", help="time the cycle kernel (simulated cycles/sec)"
    )
    p_bench.add_argument("--workloads", default=None,
                         help="comma-separated workloads "
                              "(default: pinned bfs,mcf,xz matrix)")
    p_bench.add_argument("--modes", default=None,
                         help="comma-separated modes (default: baseline,tea)")
    p_bench.add_argument("--scale", default="tiny")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="timed repetitions per cell; best is kept")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="write the JSON report (BENCH_pipeline.json)")
    p_bench.add_argument("--check", action="store_true",
                         help="smoke mode: first cell only, one repetition")
    p_bench.add_argument("--compare", default=None, metavar="PATH",
                         help="compare against a saved report; exit 1 on "
                              "regression beyond --tolerance")
    p_bench.add_argument("--tolerance", type=float, default=0.30,
                         help="allowed calibrated-throughput regression "
                              "fraction for --compare (default 0.30)")
    p_bench.set_defaults(func=_cmd_bench)

    p_sample = sub.add_parser(
        "sample",
        help="sampled simulation: functional fast-forward + parallel "
             "detailed windows",
    )
    p_sample.add_argument("workload", nargs="?", default=None)
    p_sample.add_argument("--mode", default="tea", choices=MODES)
    p_sample.add_argument("--scale", default="tiny")
    p_sample.add_argument("--windows", type=int, default=8, metavar="K",
                          help="detailed windows (default 8)")
    p_sample.add_argument("--warmup", type=int, default=2000, metavar="N",
                          help="warmup instructions per window "
                               "(default 2000)")
    p_sample.add_argument("--measure", type=int, default=4000, metavar="N",
                          help="measured instructions per window "
                               "(default 4000)")
    p_sample.add_argument("--jobs", type=int, default=0, metavar="N",
                          help="worker processes (0 = inline; reports are "
                               "byte-identical either way)")
    p_sample.add_argument("--seed", type=int, default=0,
                          help="placement seed (used by --placement random)")
    p_sample.add_argument("--placement", default="even",
                          choices=("even", "random"))
    p_sample.add_argument("--out", default=None, metavar="PATH",
                          help="write the JSON report")
    p_sample.add_argument("--validate", action="store_true",
                          help="sampled-vs-full error table on the pinned "
                               "matrix; exit 1 outside tolerance")
    p_sample.set_defaults(func=_cmd_sample)

    p_lint = sub.add_parser(
        "lint", help="statically lint workload programs"
    )
    p_lint.add_argument("workload", nargs="?", default=None,
                        help="workload name or comma-separated list")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every registered workload")
    p_lint.add_argument("--source", default=None, metavar="FILE",
                        help="lint an assembly source file instead")
    p_lint.add_argument("--scale", default="tiny")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    p_lint.set_defaults(func=_cmd_lint)

    p_slice = sub.add_parser(
        "slice", help="static backward slices of conditional branches"
    )
    p_slice.add_argument("workload")
    p_slice.add_argument("--scale", default="tiny")
    p_slice.add_argument("--branch", default=None, metavar="PC",
                         help="show only the slice of this branch PC "
                              "(accepts 0x hex)")
    p_slice.add_argument("--oracle", action="store_true",
                         help="run a TEA simulation and score the dynamic "
                              "Backward Dataflow Walk against the slices")
    p_slice.add_argument("--mode", default="tea", choices=MODES,
                         help="machine mode for --oracle (must have TEA)")
    p_slice.add_argument("--json", action="store_true",
                         help="emit slices / oracle report as JSON")
    p_slice.add_argument("--out", default=None, metavar="PATH",
                         help="with --oracle: also write the JSON report")
    p_slice.set_defaults(func=_cmd_slice)

    p_chains = sub.add_parser(
        "chains", help="static precomputation chains: classification, "
                       "soundness oracle, allow mask"
    )
    p_chains.add_argument("workload",
                          help="workload name or comma-separated list; "
                               "'fuzz' or 'fuzz/*' expands to every corpus "
                               "repro record")
    p_chains.add_argument("--scale", default="tiny")
    p_chains.add_argument("--mode", default="tea", choices=MODES,
                          help="machine mode for --oracle (must have TEA)")
    p_chains.add_argument("--oracle", action="store_true",
                          help="run a TEA simulation, verify every Backward "
                               "Dataflow Walk against its static chain, and "
                               "reconcile the timeliness model; exit 1 on "
                               "any unsound chain")
    p_chains.add_argument("--mask", action="store_true",
                          help="with --oracle: run with the static allow "
                               "mask installed (chainable branches only)")
    p_chains.add_argument("--json", action="store_true",
                          help="emit the report(s) as JSON")
    p_chains.add_argument("--out", default=None, metavar="PATH",
                          help="also write the JSON report")
    p_chains.add_argument("--mask-out", default=None, metavar="PATH",
                          help="write the TeaConfig.branch_mask allow list "
                               "(single workload only)")
    p_chains.set_defaults(func=_cmd_chains)

    p_inject = sub.add_parser(
        "inject", help="seeded microarchitectural fault-injection campaign"
    )
    p_inject.add_argument("workloads", nargs="?", default="bfs,mcf,xz",
                          help="comma-separated workloads; 'fuzz' or "
                               "'fuzz/*' expands to every corpus repro "
                               "record (default: bfs,mcf,xz)")
    p_inject.add_argument("--mode", default="tea", choices=MODES)
    p_inject.add_argument("--scale", default="tiny")
    p_inject.add_argument("--kinds", default=None,
                          help="comma-separated fault kinds "
                               "(default: all registered kinds)")
    p_inject.add_argument("--seeds", type=int, default=2, metavar="N",
                          help="seeds per (workload, kind) cell")
    p_inject.add_argument("--check-invariants", type=int, default=16,
                          metavar="N",
                          help="invariant audit period during the campaign")
    p_inject.add_argument("--max-cycles", type=int, default=2_000_000)
    p_inject.add_argument("--start-cycle", type=int, default=2_000,
                          metavar="N",
                          help="earliest cycle a fault may fire; lower it "
                               "for short fuzz repros (default 2000)")
    p_inject.add_argument("--out", default=None, metavar="PATH",
                          help="write the JSON campaign report")
    p_inject.add_argument("--json", action="store_true",
                          help="print the full report as JSON")
    p_inject.set_defaults(func=_cmd_inject)

    p_fuzz = sub.add_parser(
        "fuzz", help="seeded differential fuzzing campaign"
    )
    p_fuzz.add_argument("--seeds", type=int, default=64, metavar="N",
                        help="number of seeds in the batch (default 64)")
    p_fuzz.add_argument("--seed-base", type=int, default=0, metavar="S",
                        help="first seed; the batch is [S, S+N)")
    p_fuzz.add_argument("--budget", type=float, default=60.0, metavar="SEC",
                        help="per-seed wall-clock limit (enforced by worker "
                             "termination when --jobs >= 1)")
    p_fuzz.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="delta-debug each unique failure's "
                             "representative before recording it")
    p_fuzz.add_argument("--shrink-budget", type=int, default=512, metavar="N",
                        help="oracle evaluations allowed per shrink")
    p_fuzz.add_argument("--corpus", default=None, metavar="DIR",
                        help="repro-record directory "
                             "(default benchmarks/fuzz/)")
    p_fuzz.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes (0 = inline)")
    p_fuzz.add_argument("--report", default=None, metavar="PATH",
                        help="write the JSON triage report")
    p_fuzz.add_argument("--mode", default="baseline", choices=MODES)
    p_fuzz.add_argument("--check-invariants", type=int, default=64,
                        metavar="N",
                        help="invariant audit period in the pipeline leg")
    p_fuzz.add_argument("--max-cycles", type=int, default=2_000_000)
    p_fuzz.add_argument("--knobs", default=None, metavar="K=V[,K=V...]",
                        help="generator profile overrides, e.g. "
                             "loops=1,body_ops=3,indirect_fanout=8")
    p_fuzz.add_argument("--seeded-bug", default=None, metavar="NAME",
                        help="apply a named repro.fuzz.bugs fixture to the "
                             "pipeline (oracle self-test)")
    p_fuzz.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSONL journal of completed runs")
    p_fuzz.add_argument("--resume", action="store_true",
                        help="skip runs already in the checkpoint journal")
    p_fuzz.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_serve = sub.add_parser(
        "serve", help="run the fault-tolerant campaign service"
    )
    p_serve.add_argument("--state-dir", required=True, metavar="DIR",
                         help="durable state: journal, cell checkpoints, "
                              "result cache, endpoint.json")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="0 = ephemeral (written to endpoint.json)")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="executor worker processes per job")
    p_serve.add_argument("--queue-depth", type=int, default=16, metavar="N",
                         help="bounded job queue; beyond this submits "
                              "get 429 + Retry-After")
    p_serve.add_argument("--run-timeout", type=float, default=120.0,
                         metavar="SEC",
                         help="per-cell wall-clock limit; hung workers are "
                              "terminated and replaced (retried)")
    p_serve.add_argument("--retries", type=int, default=3, metavar="N")
    p_serve.add_argument("--backoff", type=float, default=0.25, metavar="SEC")
    p_serve.add_argument("--jitter", type=float, default=0.1,
                         help="multiplicative retry-backoff jitter (0 = off)")
    p_serve.add_argument("--drain-deadline", type=float, default=30.0,
                         metavar="SEC",
                         help="max seconds to checkpoint in-flight work "
                              "after SIGTERM before exiting")
    p_serve.add_argument("--heartbeat-timeout", type=float, default=15.0,
                         metavar="SEC",
                         help="running job silent this long counts a "
                              "heartbeat miss")
    p_serve.add_argument("--chaos-dir", default=None, metavar="DIR",
                         help="arm the chaos worker task from this plan "
                              "directory (testing only)")
    p_serve.set_defaults(func=_cmd_serve)

    def add_client_options(p) -> None:
        p.add_argument("--state-dir", default=None, metavar="DIR",
                       help="locate the service via DIR/endpoint.json")
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="service port (when not using --state-dir)")

    p_submit = sub.add_parser(
        "submit", help="submit a campaign job to a running service"
    )
    add_client_options(p_submit)
    p_submit.add_argument("workloads",
                          help="comma-separated workload list")
    p_submit.add_argument("--modes", default="baseline",
                          help="comma-separated machine modes")
    p_submit.add_argument("--scale", default="tiny")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--max-cycles", type=int, default=30_000_000)
    p_submit.add_argument("--check-invariants", type=int, default=0,
                          metavar="N")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="0..9; higher dispatches earlier")
    p_submit.add_argument("--fault-kind", default=None,
                          help="inject a repro.verify fault into each cell")
    p_submit.add_argument("--fault-seed", type=int, default=0)
    p_submit.add_argument("--token", default=None,
                          help="idempotency token (safe resubmits)")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job is terminal")
    p_submit.add_argument("--deadline", type=float, default=600.0,
                          metavar="SEC",
                          help="total budget for backpressure retries "
                               "and --wait")
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="show service jobs and metrics"
    )
    add_client_options(p_status)
    p_status.add_argument("job_id", nargs="?", default=None,
                          help="one job id (default: all jobs + metrics)")
    p_status.set_defaults(func=_cmd_status)

    p_fetch = sub.add_parser(
        "fetch", help="download a finished job's report"
    )
    add_client_options(p_fetch)
    p_fetch.add_argument("job_id")
    p_fetch.add_argument("--out", default=None, metavar="PATH",
                         help="write the report here (default stdout)")
    p_fetch.set_defaults(func=_cmd_fetch)

    p_chaos = sub.add_parser(
        "chaos", help="run the service chaos campaign and classify it"
    )
    p_chaos.add_argument("--state-dir", required=True, metavar="DIR")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--kill-after-jobs", type=int, default=1,
                         metavar="N",
                         help="SIGKILL the server once N jobs are terminal")
    p_chaos.add_argument("--run-timeout", type=float, default=10.0,
                         metavar="SEC")
    p_chaos.add_argument("--report", default=None, metavar="PATH",
                         help="write the JSON classification report")
    p_chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
