"""``.data`` / ``.text`` sections: whole programs in one source file.

The core assembler handles code only; workload builders lay out data
with the :class:`~repro.workloads.base.Arena`.  For standalone programs
(examples, user experiments) it is far more convenient to declare data
inline::

    .data
    counts:  .word 3, 1, 4, 1, 5
    total:   .word 0
    scratch: .space 16          # 16 zeroed words
    .text
        la r1, counts
        ld r2, 0(r1)
        ...
        halt

Directives:

* ``.word v0, v1, ...`` — consecutive 8-byte words (ints or floats),
* ``.space N``          — N zeroed words,
* ``.align``            — advance to the next 64B cache-line boundary.

Data labels become assembler symbols usable as immediates in the text
section (``li``/``la``), exactly like workload arena symbols.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..memory.memory_image import MemoryImage
from .assembler import AssemblerError, assemble
from .program import Program

DEFAULT_DATA_BASE = 0x0001_0000

_DATA_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.]*)\s*:\s*(.*)$")


@dataclass
class AssembledUnit:
    """A program together with its initialized data image."""

    program: Program
    memory: MemoryImage
    symbols: dict[str, int]


def _parse_value(text: str, line_no: int) -> int | float:
    text = text.strip()
    try:
        if "." in text or "e" in text.lower() and not text.lower().startswith("0x"):
            return float(text)
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad data value {text!r}") from None


def assemble_unit(
    source: str,
    entry_pc: int = 0,
    data_base: int = DEFAULT_DATA_BASE,
) -> AssembledUnit:
    """Assemble a two-section source into code + data.

    Source without section markers is treated as pure text (the plain
    :func:`~repro.isa.assembler.assemble` behaviour).
    """
    text_lines: list[str] = []
    memory = MemoryImage()
    symbols: dict[str, int] = {}
    cursor = data_base
    section = "text"

    for line_no, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if stripped == ".data":
            section = "data"
            text_lines.append("")
            continue
        if stripped == ".text":
            section = "text"
            text_lines.append("")
            continue
        if section == "text":
            text_lines.append(raw)
            continue
        # Data lines become blanks in the text image so that assembler
        # line numbers (errors and Instruction.line) keep pointing at
        # the original unit source.
        text_lines.append("")
        if not stripped:
            continue
        match = _DATA_LABEL_RE.match(stripped)
        if match:
            name = match.group(1)
            if name in symbols:
                raise AssemblerError(f"line {line_no}: duplicate data label {name!r}")
            symbols[name] = cursor
            stripped = match.group(2).strip()
            if not stripped:
                continue
        if stripped.startswith(".word"):
            values = [
                _parse_value(v, line_no)
                for v in stripped[len(".word"):].split(",")
                if v.strip()
            ]
            if not values:
                raise AssemblerError(f"line {line_no}: .word needs values")
            cursor = memory.write_array(cursor, values)
        elif stripped.startswith(".space"):
            count = int(stripped[len(".space"):].strip() or "0", 0)
            if count <= 0:
                raise AssemblerError(f"line {line_no}: .space needs a positive count")
            cursor = memory.write_array(cursor, [0] * count)
        elif stripped == ".align":
            cursor = (cursor + 63) & ~63
        else:
            raise AssemblerError(
                f"line {line_no}: unknown data directive {stripped.split()[0]!r}"
            )

    program = assemble("\n".join(text_lines), entry_pc, symbols)
    return AssembledUnit(program=program, memory=memory, symbols=symbols)
