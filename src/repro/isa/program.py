"""Static program representation: instruction memory and basic blocks.

A :class:`Program` is the immutable instruction image the simulator
fetches from.  Instructions live at ``entry_pc + 4*i``.  Basic blocks
are derived once at construction: a *leader* is the entry PC, any
control-flow target, or the instruction after any control-flow
instruction.  Basic-block start PCs tag the TEA Block Cache entries
(paper §III-A) and bound its per-block bit-masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import INSTRUCTION_BYTES, Instruction


@dataclass(frozen=True)
class BasicBlock:
    """A maximal single-entry straight-line region of the program."""

    start_pc: int
    end_pc: int  # PC of the *last* instruction in the block (inclusive)
    #: (first, last) 1-based source lines spanned by the block's
    #: instructions, or ``None`` when no instruction carries line info.
    #: Excluded from equality so blocks still compare by PC range.
    line_range: tuple[int, int] | None = field(default=None, compare=False)

    @property
    def num_instructions(self) -> int:
        return (self.end_pc - self.start_pc) // INSTRUCTION_BYTES + 1

    def pcs(self) -> range:
        return range(self.start_pc, self.end_pc + 1, INSTRUCTION_BYTES)


class Program:
    """An assembled program: instructions, labels, and basic blocks."""

    def __init__(
        self,
        instructions: list[Instruction],
        labels: dict[str, int] | None = None,
        entry_pc: int = 0,
    ):
        if not instructions:
            raise ValueError("a program needs at least one instruction")
        self.entry_pc = entry_pc
        self.instructions = instructions
        self.labels = dict(labels or {})
        self._by_pc = {ins.pc: ins for ins in instructions}
        self.end_pc = instructions[-1].pc
        self._blocks = self._compute_blocks()
        self._block_start_by_pc = {}
        for block in self._blocks.values():
            for pc in block.pcs():
                self._block_start_by_pc[pc] = block.start_pc

    def __len__(self) -> int:
        return len(self.instructions)

    def instruction_at(self, pc: int) -> Instruction | None:
        """The instruction at ``pc``, or ``None`` if outside the image."""
        return self._by_pc.get(pc)

    def contains(self, pc: int) -> bool:
        return pc in self._by_pc

    @property
    def basic_blocks(self) -> dict[int, BasicBlock]:
        """Mapping of start PC -> basic block."""
        return self._blocks

    def block_starting_at(self, pc: int) -> BasicBlock | None:
        return self._blocks.get(pc)

    def block_containing(self, pc: int) -> BasicBlock | None:
        start = self._block_start_by_pc.get(pc)
        return self._blocks.get(start) if start is not None else None

    def label_pc(self, label: str) -> int:
        return self.labels[label]

    def _compute_blocks(self) -> dict[int, BasicBlock]:
        leaders = {self.entry_pc}
        for ins in self.instructions:
            if ins.is_branch:
                if ins.target is not None:
                    leaders.add(ins.target)
                fall = ins.fallthrough_pc
                if fall in self._by_pc:
                    leaders.add(fall)
        # Every branch's fallthrough is a leader, so a branch is always
        # the last instruction before the next leader; blocks therefore
        # simply span leader-to-leader.
        ordered = sorted(pc for pc in leaders if pc in self._by_pc)
        blocks: dict[int, BasicBlock] = {}
        for i, start in enumerate(ordered):
            if i + 1 < len(ordered):
                end = ordered[i + 1] - INSTRUCTION_BYTES
            else:
                end = self.end_pc
            lines = [
                ins.line
                for pc in range(start, end + 1, INSTRUCTION_BYTES)
                if (ins := self._by_pc[pc]).line is not None
            ]
            span = (min(lines), max(lines)) if lines else None
            blocks[start] = BasicBlock(start, end, span)
        return blocks

    def line_of(self, pc: int) -> int | None:
        """Source line of the instruction at ``pc`` (``None`` if unknown)."""
        ins = self._by_pc.get(pc)
        return ins.line if ins is not None else None
