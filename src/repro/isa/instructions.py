"""Instruction set definition for the micro-ISA.

The ISA is a fixed-length (4 bytes per instruction) RISC-like set chosen
so that the paper's frontend arithmetic holds directly: the decoupled
branch predictor produces up to one taken branch or 128 bytes — i.e. 32
instructions — per cycle, and a 64-byte cache line holds 16 instructions.

Each static instruction decodes into exactly one uop (the paper notes
operating at instruction granularity "works fine for fixed-length
ISAs").  Every instruction is described by:

* ``opcode`` — mnemonic string (interned; comparisons are by identity),
* ``dst`` — flat destination architectural register index or ``None``,
* ``srcs`` — tuple of flat source register indices,
* ``imm`` — immediate operand (also the address offset for memory ops),
* ``target`` — statically known control-flow target PC, if any.

Instruction *classes* (:class:`UopClass`) drive the timing model: which
execution ports accept the uop and its latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

INSTRUCTION_BYTES = 4
"""Size of every instruction; PCs advance by this amount."""


class UopClass(enum.IntEnum):
    """Execution class of a uop; selects ports and latency."""

    ALU = 0        # single-cycle integer ops
    MUL = 1        # integer multiply
    DIV = 2        # integer divide / remainder
    FP = 3         # floating point arithmetic
    LOAD = 4
    STORE = 5
    BR_COND = 6    # conditional direct branch
    BR_JUMP = 7    # unconditional direct jump
    BR_CALL = 8    # direct call (pushes return address)
    BR_RET = 9     # return (indirect via ra, predicted with RAS)
    BR_IND = 10    # other indirect jump (jr / computed goto)
    NOP = 11
    HALT = 12


#: Execution latency (cycles in the execution units) per class.
CLASS_LATENCY = {
    UopClass.ALU: 1,
    UopClass.MUL: 3,
    UopClass.DIV: 12,
    UopClass.FP: 4,
    UopClass.LOAD: 1,       # address generation; cache adds the rest
    UopClass.STORE: 1,
    UopClass.BR_COND: 1,
    UopClass.BR_JUMP: 1,
    UopClass.BR_CALL: 1,
    UopClass.BR_RET: 1,
    UopClass.BR_IND: 1,
    UopClass.NOP: 1,
    UopClass.HALT: 1,
}

BRANCH_CLASSES = frozenset(
    {
        UopClass.BR_COND,
        UopClass.BR_JUMP,
        UopClass.BR_CALL,
        UopClass.BR_RET,
        UopClass.BR_IND,
    }
)

#: Branch classes whose direction or target is actually predicted (and
#: can therefore mispredict).  Direct jumps/calls always resolve at
#: decode in our model and never mispredict.
PREDICTED_BRANCH_CLASSES = frozenset(
    {UopClass.BR_COND, UopClass.BR_RET, UopClass.BR_IND}
)


# opcode -> (UopClass, has_dst, num_srcs, has_imm)
_OPCODE_TABLE: dict[str, tuple[UopClass, bool, int, bool]] = {
    # integer ALU, register-register
    "add": (UopClass.ALU, True, 2, False),
    "sub": (UopClass.ALU, True, 2, False),
    "and": (UopClass.ALU, True, 2, False),
    "or": (UopClass.ALU, True, 2, False),
    "xor": (UopClass.ALU, True, 2, False),
    "shl": (UopClass.ALU, True, 2, False),
    "shr": (UopClass.ALU, True, 2, False),
    "slt": (UopClass.ALU, True, 2, False),
    "sltu": (UopClass.ALU, True, 2, False),
    "min": (UopClass.ALU, True, 2, False),
    "max": (UopClass.ALU, True, 2, False),
    # integer ALU, register-immediate
    "addi": (UopClass.ALU, True, 1, True),
    "subi": (UopClass.ALU, True, 1, True),
    "andi": (UopClass.ALU, True, 1, True),
    "ori": (UopClass.ALU, True, 1, True),
    "xori": (UopClass.ALU, True, 1, True),
    "shli": (UopClass.ALU, True, 1, True),
    "shri": (UopClass.ALU, True, 1, True),
    "slti": (UopClass.ALU, True, 1, True),
    "li": (UopClass.ALU, True, 0, True),
    "mov": (UopClass.ALU, True, 1, False),
    # multiply / divide
    "mul": (UopClass.MUL, True, 2, False),
    "div": (UopClass.DIV, True, 2, False),
    "rem": (UopClass.DIV, True, 2, False),
    # floating point (operate on f-registers; values are floats)
    "fadd": (UopClass.FP, True, 2, False),
    "fsub": (UopClass.FP, True, 2, False),
    "fmul": (UopClass.FP, True, 2, False),
    "fdiv": (UopClass.FP, True, 2, False),
    "fmin": (UopClass.FP, True, 2, False),
    "fmax": (UopClass.FP, True, 2, False),
    "fmov": (UopClass.FP, True, 1, False),
    "fli": (UopClass.FP, True, 0, True),
    "itof": (UopClass.FP, True, 1, False),
    "ftoi": (UopClass.FP, True, 1, False),
    "fcmplt": (UopClass.FP, True, 2, False),  # int dst = (f1 < f2)
    # memory: ld rd, imm(rs1) / st rs2, imm(rs1)
    "ld": (UopClass.LOAD, True, 1, True),
    "fld": (UopClass.LOAD, True, 1, True),
    "st": (UopClass.STORE, False, 2, True),
    "fst": (UopClass.STORE, False, 2, True),
    # control flow
    "beq": (UopClass.BR_COND, False, 2, False),
    "bne": (UopClass.BR_COND, False, 2, False),
    "blt": (UopClass.BR_COND, False, 2, False),
    "bge": (UopClass.BR_COND, False, 2, False),
    "ble": (UopClass.BR_COND, False, 2, False),
    "bgt": (UopClass.BR_COND, False, 2, False),
    "jmp": (UopClass.BR_JUMP, False, 0, False),
    "call": (UopClass.BR_CALL, True, 0, False),   # dst = ra
    "ret": (UopClass.BR_RET, False, 1, False),    # src = ra
    "jr": (UopClass.BR_IND, False, 1, False),
    "callr": (UopClass.BR_IND, True, 1, False),   # indirect call: dst = ra
    # misc
    "nop": (UopClass.NOP, False, 0, False),
    "halt": (UopClass.HALT, False, 0, False),
}


def opcode_signature(opcode: str) -> tuple[UopClass, bool, int, bool]:
    """Return ``(uop_class, has_dst, num_srcs, has_imm)`` for an opcode."""
    try:
        return _OPCODE_TABLE[opcode]
    except KeyError:
        raise ValueError(f"unknown opcode: {opcode!r}") from None


def known_opcodes() -> frozenset[str]:
    """The set of all valid opcode mnemonics."""
    return frozenset(_OPCODE_TABLE)


@dataclass(frozen=True)
class Instruction:
    """A decoded static instruction.

    ``pc`` is filled in by the assembler/program builder.  ``target`` is
    the statically-encoded control-flow target PC for direct branches,
    jumps, and calls (``None`` for indirect control flow and non-branch
    instructions).
    """

    opcode: str
    dst: int | None = None
    srcs: tuple[int, ...] = ()
    imm: int | None = None
    target: int | None = None
    pc: int = -1
    label: str | None = field(default=None, compare=False)
    #: 1-based source line in the assembly text this instruction came
    #: from (``None`` for hand-built instructions).  Carried so lint
    #: findings and slicer output can point at workload source lines;
    #: excluded from equality like ``label``.
    line: int | None = field(default=None, compare=False)

    # Derived accessors are pure functions of the frozen fields and sit
    # on the simulator's per-cycle hot path, so they are cached on first
    # access (cached_property writes straight into __dict__, which a
    # frozen dataclass still has).
    @cached_property
    def uop_class(self) -> UopClass:
        return _OPCODE_TABLE[self.opcode][0]

    @cached_property
    def is_branch(self) -> bool:
        """True for any control-flow instruction (cond, jump, call, ret, indirect)."""
        return _OPCODE_TABLE[self.opcode][0] in BRANCH_CLASSES

    @cached_property
    def is_conditional(self) -> bool:
        return _OPCODE_TABLE[self.opcode][0] is UopClass.BR_COND

    @cached_property
    def is_indirect(self) -> bool:
        return _OPCODE_TABLE[self.opcode][0] in (UopClass.BR_RET, UopClass.BR_IND)

    @cached_property
    def is_load(self) -> bool:
        return _OPCODE_TABLE[self.opcode][0] is UopClass.LOAD

    @cached_property
    def is_store(self) -> bool:
        return _OPCODE_TABLE[self.opcode][0] is UopClass.STORE

    @cached_property
    def is_mem(self) -> bool:
        return _OPCODE_TABLE[self.opcode][0] in (UopClass.LOAD, UopClass.STORE)

    @cached_property
    def latency(self) -> int:
        return CLASS_LATENCY[_OPCODE_TABLE[self.opcode][0]]

    @cached_property
    def fallthrough_pc(self) -> int:
        return self.pc + INSTRUCTION_BYTES

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode]
        if self.dst is not None:
            parts.append(f"d{self.dst}")
        if self.srcs:
            parts.append("s" + ",".join(map(str, self.srcs)))
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target:#x}")
        return f"{self.pc:#06x}: " + " ".join(parts)
