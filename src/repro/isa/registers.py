"""Architectural register file definition for the micro-ISA.

The ISA has 32 general-purpose integer registers (``r0``-``r31``) and 16
floating-point registers (``f0``-``f15``).  ``r0`` is hardwired to zero,
matching RISC conventions; writes to it are discarded.  A handful of
integer registers have ABI aliases used by the assembler and the
workload kernels:

===========  =====  =========================================
alias        reg    purpose
===========  =====  =========================================
``zero``     r0     constant zero
``ra``       r31    return address (written by ``call``)
``sp``       r30    stack pointer
``fp``       r29    frame pointer
``gp``       r28    global data pointer
===========  =====  =========================================

Architectural register *indices* are flat: integer registers occupy
``0..31`` and float registers ``32..47``.  The flat index space is what
the rename logic, the Backward Dataflow Walk's Source List bit-vector,
and the TEA poison bits operate on.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 16
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

# Flat indices of the ABI-named registers.
REG_ZERO = 0
REG_RA = 31
REG_SP = 30
REG_FP = 29
REG_GP = 28

_ALIASES = {
    "zero": REG_ZERO,
    "ra": REG_RA,
    "sp": REG_SP,
    "fp": REG_FP,
    "gp": REG_GP,
}


def parse_register(name: str) -> int:
    """Return the flat architectural index for a register name.

    Accepts ``rN`` (0..31), ``fN`` (0..15) and the ABI aliases listed in
    the module docstring.  Raises ``ValueError`` for anything else.
    """
    name = name.strip().lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if len(name) >= 2 and name[0] == "r" and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_INT_REGS:
            return idx
    if len(name) >= 2 and name[0] == "f" and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_FP_REGS:
            return NUM_INT_REGS + idx
    raise ValueError(f"unknown register name: {name!r}")


def register_name(index: int) -> str:
    """Return the canonical name (``rN``/``fN``) for a flat index."""
    if 0 <= index < NUM_INT_REGS:
        return f"r{index}"
    if NUM_INT_REGS <= index < NUM_ARCH_REGS:
        return f"f{index - NUM_INT_REGS}"
    raise ValueError(f"register index out of range: {index}")


def is_fp_register(index: int) -> bool:
    """True if the flat index names a floating-point register."""
    return NUM_INT_REGS <= index < NUM_ARCH_REGS
