"""Micro-ISA: instruction set, assembler, programs, and semantics.

The ISA is the substrate every other subsystem consumes: the decoupled
branch predictor walks :class:`Program` images, the OoO core executes
:class:`Instruction` uops via :mod:`repro.isa.semantics`, and the TEA
Block Cache is keyed by :class:`BasicBlock` start PCs.
"""

from .assembler import AssemblerError, assemble
from .data_directives import AssembledUnit, assemble_unit
from .interpreter import (
    InterpreterError,
    InterpreterResult,
    InterpreterTimeout,
    run_program,
)
from .instructions import (
    BRANCH_CLASSES,
    CLASS_LATENCY,
    INSTRUCTION_BYTES,
    PREDICTED_BRANCH_CLASSES,
    Instruction,
    UopClass,
    known_opcodes,
    opcode_signature,
)
from .program import BasicBlock, Program
from .registers import (
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_FP,
    REG_GP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    is_fp_register,
    parse_register,
    register_name,
)
from .semantics import (
    branch_taken,
    branch_target,
    compute_result,
    effective_address,
    to_signed64,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "AssembledUnit",
    "assemble_unit",
    "InterpreterError",
    "InterpreterResult",
    "InterpreterTimeout",
    "run_program",
    "BRANCH_CLASSES",
    "CLASS_LATENCY",
    "INSTRUCTION_BYTES",
    "PREDICTED_BRANCH_CLASSES",
    "Instruction",
    "UopClass",
    "known_opcodes",
    "opcode_signature",
    "BasicBlock",
    "Program",
    "NUM_ARCH_REGS",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "REG_FP",
    "REG_GP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "is_fp_register",
    "parse_register",
    "register_name",
    "branch_taken",
    "branch_target",
    "compute_result",
    "effective_address",
    "to_signed64",
]
