"""Functional semantics for the micro-ISA.

These helpers are *pure*: given an instruction and the values of its
source operands they compute results, branch outcomes and effective
addresses.  The execution-driven pipeline calls them at execute time,
so wrong-path instructions compute with whatever (stale/garbage) values
they were renamed against — exactly like real speculative hardware —
and are discarded on flush.

Integer values are modelled as 64-bit two's-complement (results are
wrapped with :func:`to_signed64`); floating-point registers hold Python
floats.  Division by zero yields 0 rather than trapping: wrong-path
code must never crash the simulator.
"""

from __future__ import annotations

from .instructions import Instruction, UopClass

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def to_signed64(value: int) -> int:
    """Wrap an integer into signed 64-bit two's-complement range."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _sdiv(a, b) * b


_INT_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: (a & _MASK64) >> (b & 63),
    "slt": lambda a, b: int(a < b),
    "sltu": lambda a, b: int((a & _MASK64) < (b & _MASK64)),
    "min": min,
    "max": max,
    "mul": lambda a, b: a * b,
    "div": _sdiv,
    "rem": _srem,
}

_FP_OPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b != 0.0 else 0.0,
    "fmin": min,
    "fmax": max,
}

_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "ble": lambda a, b: a <= b,
    "bgt": lambda a, b: a > b,
}


def _bind_rr(fn):
    return lambda srcs, imm: to_signed64(fn(srcs[0], srcs[1]))


def _bind_ri(fn):
    return lambda srcs, imm: to_signed64(fn(srcs[0], imm))


def _bind_fp(fn):
    return lambda srcs, imm: fn(srcs[0], srcs[1])


def _build_evaluators() -> dict:
    """Pre-bind one ``(srcs, imm) -> value`` handler per scalar opcode.

    Dispatching through this table replaces :func:`compute_result`'s
    per-step string tests (``op.endswith("i")`` etc.) with a single
    dict lookup — the interpreter's hot loop and the sampled-simulation
    functional engine both index it by ``instr.opcode``.  Branch and
    memory opcodes are deliberately absent: their semantics need the
    instruction object (targets, effective addresses).
    """
    table: dict = {}
    for op in ("add", "sub", "and", "or", "xor", "shl", "shr", "slt",
               "sltu", "min", "max", "mul", "div", "rem"):
        table[op] = _bind_rr(_INT_OPS[op])
    for op in ("addi", "subi", "andi", "ori", "xori", "shli", "shri",
               "slti"):
        table[op] = _bind_ri(_INT_OPS[op[:-1]])
    table["li"] = lambda srcs, imm: imm
    table["mov"] = lambda srcs, imm: srcs[0]
    for op in ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"):
        table[op] = _bind_fp(_FP_OPS[op])
    table["fmov"] = lambda srcs, imm: srcs[0]
    # fli encodes a small float immediate scaled by 1/256.
    table["fli"] = lambda srcs, imm: imm / 256.0
    table["itof"] = lambda srcs, imm: float(srcs[0])
    table["ftoi"] = lambda srcs, imm: to_signed64(int(srcs[0]))
    table["fcmplt"] = lambda srcs, imm: int(srcs[0] < srcs[1])
    return table


#: opcode -> ``(srcs, imm) -> value`` for every ALU/MUL/DIV/FP opcode.
SCALAR_EVALUATORS = _build_evaluators()

#: opcode -> ``(a, b) -> bool`` for every conditional-branch opcode
#: (public alias so dispatch-table builders need not reach into the
#: private op dicts).
BRANCH_EVALUATORS = dict(_BRANCH_OPS)


def compute_result(instr: Instruction, srcs: tuple) -> int | float | None:
    """Compute the destination value of a non-memory, non-branch uop.

    ``srcs`` holds the source operand values in the order of
    ``instr.srcs``.  Returns ``None`` for instructions without a
    destination.  ``call``/``callr`` results (the return address) are
    handled here as well since they write ``ra``.
    """
    fn = SCALAR_EVALUATORS.get(instr.opcode)
    if fn is not None:
        return fn(srcs, instr.imm)
    cls = instr.uop_class
    if cls in (UopClass.BR_CALL, UopClass.BR_IND) and instr.dst is not None:
        return instr.fallthrough_pc
    return None


def branch_taken(instr: Instruction, srcs: tuple) -> bool:
    """Resolve the direction of a control-flow instruction.

    Unconditional control flow (jumps, calls, returns, indirect jumps)
    is always taken; conditional branches evaluate their comparison.
    """
    cls = instr.uop_class
    if cls is UopClass.BR_COND:
        return bool(_BRANCH_OPS[instr.opcode](srcs[0], srcs[1]))
    return True


def branch_target(instr: Instruction, srcs: tuple) -> int:
    """Resolve the taken-path target PC of a control-flow instruction."""
    if instr.is_indirect:
        return int(srcs[0])
    assert instr.target is not None, f"direct branch without target: {instr}"
    return instr.target


def effective_address(instr: Instruction, srcs: tuple) -> int:
    """Compute the byte address accessed by a load or store.

    Loads use ``srcs[0]`` as the base; stores use ``srcs[1]`` (their
    first source is the value being stored).
    """
    base = srcs[1] if instr.is_store else srcs[0]
    return to_signed64(int(base) + (instr.imm or 0))
