"""Reference functional interpreter for the micro-ISA.

Executes a program sequentially with architectural semantics — no
pipeline, no speculation.  It is the golden model: the execution-driven
pipeline must commit exactly the architectural state this interpreter
produces (property-tested in ``tests/test_pipeline_vs_interpreter.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.memory_image import MemoryImage
from .instructions import INSTRUCTION_BYTES, UopClass
from .program import Program
from .registers import NUM_ARCH_REGS, REG_ZERO
from .semantics import (
    BRANCH_EVALUATORS,
    SCALAR_EVALUATORS,
    branch_target,
    effective_address,
)


class InterpreterError(RuntimeError):
    """Raised on runaway programs or control flow leaving the image."""


class InterpreterTimeout(InterpreterError):
    """The program did not halt within the ``max_steps`` budget.

    A typed subclass so batch drivers (the fuzz workers in
    :mod:`repro.fuzz`) can classify a non-terminating generated program
    as a *hang* instead of a crash.  ``pc`` is the program counter the
    interpreter was about to execute and ``steps`` the budget it
    exhausted.
    """

    def __init__(self, pc: int, steps: int):
        super().__init__(
            f"program did not halt within {steps} steps (pc={pc:#x})"
        )
        self.pc = pc
        self.steps = steps


@dataclass
class InterpreterResult:
    """Final architectural state after sequential execution."""

    registers: list
    memory: MemoryImage
    instructions_executed: int
    halted: bool
    trace: list = field(default_factory=list)


def run_program(
    program: Program,
    memory: MemoryImage | None = None,
    max_steps: int = 5_000_000,
    collect_trace: bool = False,
) -> InterpreterResult:
    """Run to HALT (or ``max_steps``); returns final state.

    With ``collect_trace`` the result records ``(pc, taken)`` for every
    control-flow instruction — handy for validating predictors against
    ground-truth outcome streams.
    """
    memory = memory if memory is not None else MemoryImage()
    regs: list = [0] * NUM_ARCH_REGS
    pc = program.entry_pc
    steps = 0
    trace: list = []
    # Hot-loop hoists: one local load instead of an attribute chain (or
    # a dict build) per executed instruction.  The semantics handlers
    # are pre-bound per opcode in SCALAR_EVALUATORS / BRANCH_EVALUATORS.
    instruction_at = program._by_pc.get
    mem_load = memory.load
    mem_store = memory.store
    trace_append = trace.append
    scalar_eval = SCALAR_EVALUATORS
    branch_eval = BRANCH_EVALUATORS
    halt_cls = UopClass.HALT
    nop_cls = UopClass.NOP
    load_cls = UopClass.LOAD
    store_cls = UopClass.STORE
    cond_cls = UopClass.BR_COND
    step_bytes = INSTRUCTION_BYTES
    while steps < max_steps:
        instr = instruction_at(pc)
        if instr is None:
            raise InterpreterError(f"control flow left the image at {pc:#x}")
        steps += 1
        cls = instr.uop_class
        if cls is halt_cls:
            return InterpreterResult(regs, memory, steps, True, trace)
        if cls is nop_cls:
            pc += step_bytes
            continue
        values = tuple([regs[r] for r in instr.srcs])
        if instr.is_branch:
            taken = (
                bool(branch_eval[instr.opcode](values[0], values[1]))
                if cls is cond_cls
                else True
            )
            dst = instr.dst
            if dst is not None and dst != REG_ZERO:
                # call/callr write the return address (the only branch
                # destinations); see compute_result.
                regs[dst] = instr.fallthrough_pc
            if collect_trace:
                trace_append((pc, taken))
            pc = branch_target(instr, values) if taken else instr.fallthrough_pc
            continue
        if cls is load_cls:
            addr = effective_address(instr, values)
            if instr.dst != REG_ZERO:
                regs[instr.dst] = mem_load(addr)
        elif cls is store_cls:
            mem_store(effective_address(instr, values), values[0])
        else:
            result = scalar_eval[instr.opcode](values, instr.imm)
            if instr.dst is not None and instr.dst != REG_ZERO:
                regs[instr.dst] = result
        pc += step_bytes
    raise InterpreterTimeout(pc, max_steps)
