"""Two-pass assembler for the micro-ISA.

Syntax (one statement per line, ``#`` starts a comment)::

    loop:                      # labels end with ':'
        li   r1, 100           # immediates: decimal or 0x hex
        ld   r2, 8(r3)         # load:  rd, offset(base)
        st   r2, 0(r3)         # store: rs, offset(base)
        beq  r1, r2, done      # branches name a label
        addi r1, r1, -1
        jmp  loop
    done:
        call helper
        halt

Pseudo-instructions expanded by the assembler:

* ``beqz/bnez/bltz/bgez rs, label`` — compare against ``zero``
* ``inc rd`` / ``dec rd`` — ``addi rd, rd, ±1``
* ``la rd, label`` — load a label's PC (for ``jr``/``callr`` tables)

The assembler produces a :class:`~repro.isa.program.Program` with PCs
assigned from ``entry_pc`` in 4-byte steps.
"""

from __future__ import annotations

import re

from .instructions import INSTRUCTION_BYTES, Instruction, UopClass, opcode_signature
from .program import Program
from .registers import REG_RA, parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(\s*([A-Za-z0-9_]+)\s*\)$")


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with line information.

    Every diagnostic — unknown opcode, malformed operand, bad register
    name, undefined label, out-of-range immediate — funnels through
    this one typed exception so tools batch-assembling generated or
    hand-edited sources (the fuzzer, ``repro lint --source``) never see
    a bare ``KeyError``/``ValueError`` leak out of the assembler.
    """


#: Immediates must be representable as a signed 64-bit word (the
#: machine's architectural value width); anything beyond that cannot
#: round-trip through the register file.
IMM_MIN = -(1 << 63)
IMM_MAX = (1 << 63) - 1


def _parse_int(text: str, line_no: int) -> int:
    try:
        value = int(text, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad immediate {text!r}") from None
    if not IMM_MIN <= value <= IMM_MAX:
        raise AssemblerError(
            f"line {line_no}: immediate {text} out of signed 64-bit range"
        )
    return value


def _parse_reg(text: str, line_no: int) -> int:
    try:
        return parse_register(text)
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: {exc}") from None


def _split_operands(rest: str) -> list[str]:
    return [op.strip() for op in rest.split(",")] if rest.strip() else []


def assemble(
    source: str,
    entry_pc: int = 0,
    symbols: dict[str, int] | None = None,
) -> Program:
    """Assemble micro-ISA source text into a :class:`Program`.

    ``symbols`` supplies external names (e.g. data labels laid out by
    :func:`repro.isa.data_directives.assemble_unit`) usable wherever an
    immediate is accepted: ``li r1, my_array``.  Code labels shadow
    external symbols.
    """
    statements: list[tuple[int, str, list[str]]] = []  # (line_no, opcode, operands)
    labels: dict[str, int] = {}

    # Pass 1: strip comments, collect labels, expand pseudo-ops.
    pc = entry_pc
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                name = match.group(1)
                if name in labels:
                    raise AssemblerError(f"line {line_no}: duplicate label {name!r}")
                labels[name] = pc
                line = match.group(2).strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        opcode = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        for expanded in _expand_pseudo(opcode, operands, line_no):
            statements.append((line_no, expanded[0], expanded[1]))
            pc += INSTRUCTION_BYTES

    if not statements:
        raise AssemblerError("empty program")

    # Pass 2: encode.  Code labels take precedence over externals.
    resolved = dict(symbols or {})
    resolved.update(labels)
    instructions: list[Instruction] = []
    pc = entry_pc
    for line_no, opcode, operands in statements:
        instructions.append(_encode(opcode, operands, resolved, labels, pc, line_no))
        pc += INSTRUCTION_BYTES
    return Program(instructions, labels, entry_pc)


def _expand_pseudo(
    opcode: str, operands: list[str], line_no: int
) -> list[tuple[str, list[str]]]:
    if opcode == "beqz":
        _require(operands, 2, opcode, line_no)
        return [("beq", [operands[0], "zero", operands[1]])]
    if opcode == "bnez":
        _require(operands, 2, opcode, line_no)
        return [("bne", [operands[0], "zero", operands[1]])]
    if opcode == "bltz":
        _require(operands, 2, opcode, line_no)
        return [("blt", [operands[0], "zero", operands[1]])]
    if opcode == "bgez":
        _require(operands, 2, opcode, line_no)
        return [("bge", [operands[0], "zero", operands[1]])]
    if opcode == "inc":
        _require(operands, 1, opcode, line_no)
        return [("addi", [operands[0], operands[0], "1"])]
    if opcode == "dec":
        _require(operands, 1, opcode, line_no)
        return [("addi", [operands[0], operands[0], "-1"])]
    if opcode == "la":
        _require(operands, 2, opcode, line_no)
        return [("li", operands)]  # label resolved at encode time
    return [(opcode, operands)]


def _require(operands: list[str], count: int, opcode: str, line_no: int) -> None:
    if len(operands) != count:
        raise AssemblerError(
            f"line {line_no}: {opcode} expects {count} operands, got {len(operands)}"
        )


def _encode(
    opcode: str,
    operands: list[str],
    symbols: dict[str, int],
    labels: dict[str, int],
    pc: int,
    line_no: int,
) -> Instruction:
    try:
        cls, has_dst, num_srcs, has_imm = opcode_signature(opcode)
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: {exc}") from None

    def resolve_value(text: str) -> int:
        if text in symbols:
            return symbols[text]
        return _parse_int(text, line_no)

    def resolve_label(text: str) -> int:
        if text not in labels:
            raise AssemblerError(f"line {line_no}: undefined label {text!r}")
        return labels[text]

    dst: int | None = None
    srcs: tuple[int, ...] = ()
    imm: int | None = None
    target: int | None = None

    if cls in (UopClass.LOAD, UopClass.STORE):
        _require(operands, 2, opcode, line_no)
        mem = _MEM_RE.match(operands[1].replace(" ", ""))
        if not mem:
            raise AssemblerError(
                f"line {line_no}: expected offset(base) operand, got {operands[1]!r}"
            )
        imm = _parse_int(mem.group(1), line_no)
        base = _parse_reg(mem.group(2), line_no)
        if cls is UopClass.LOAD:
            dst = _parse_reg(operands[0], line_no)
            srcs = (base,)
        else:
            srcs = (_parse_reg(operands[0], line_no), base)
    elif cls is UopClass.BR_COND:
        _require(operands, 3, opcode, line_no)
        srcs = (_parse_reg(operands[0], line_no), _parse_reg(operands[1], line_no))
        target = resolve_label(operands[2])
    elif cls in (UopClass.BR_JUMP, UopClass.BR_CALL):
        _require(operands, 1, opcode, line_no)
        target = resolve_label(operands[0])
        if cls is UopClass.BR_CALL:
            dst = REG_RA
    elif cls is UopClass.BR_RET:
        _require(operands, 0, opcode, line_no)
        srcs = (REG_RA,)
    elif cls is UopClass.BR_IND:
        _require(operands, 1, opcode, line_no)
        srcs = (_parse_reg(operands[0], line_no),)
        if opcode == "callr":
            dst = REG_RA
    else:
        expected = (1 if has_dst else 0) + num_srcs + (1 if has_imm else 0)
        _require(operands, expected, opcode, line_no)
        pos = 0
        if has_dst:
            dst = _parse_reg(operands[pos], line_no)
            pos += 1
        regs = []
        for _ in range(num_srcs):
            regs.append(_parse_reg(operands[pos], line_no))
            pos += 1
        srcs = tuple(regs)
        if has_imm:
            imm = resolve_value(operands[pos])
    return Instruction(
        opcode=opcode, dst=dst, srcs=srcs, imm=imm, target=target, pc=pc,
        line=line_no,
    )
