"""TEA store data cache (paper §IV-E).

TEA-thread stores must not touch architectural memory; they write into
a tiny buffer holding the last 16 half-lines (32 bytes) written by TEA
stores.  TEA loads consult this buffer before committed memory, giving
the thread store-to-load visibility within its own speculative stream.
"""

from __future__ import annotations

from collections import OrderedDict

from ..memory.memory_image import align_word
from .config import TeaConfig

HALF_LINE_BYTES = 32


def _half_line(addr: int) -> int:
    return addr & ~(HALF_LINE_BYTES - 1)


class TeaStoreCache:
    """FIFO cache of half-lines written by TEA stores."""

    def __init__(self, config: TeaConfig | None = None):
        self.config = config or TeaConfig()
        # half-line base -> {word address -> value}
        self._lines: OrderedDict[int, dict[int, int | float]] = OrderedDict()
        self.stores = 0
        self.load_hits = 0
        self.evictions = 0

    def store(self, addr: int, value: int | float) -> None:
        base = _half_line(addr)
        line = self._lines.get(base)
        if line is None:
            if len(self._lines) >= self.config.store_cache_halflines:
                self._lines.popitem(last=False)
                self.evictions += 1
            line = {}
            self._lines[base] = line
        line[align_word(addr)] = value
        self.stores += 1

    def load(self, addr: int) -> int | float | None:
        """Value previously stored by the TEA thread, else ``None``."""
        line = self._lines.get(_half_line(addr))
        if line is None:
            return None
        value = line.get(align_word(addr))
        if value is not None:
            self.load_hits += 1
        return value

    def clear(self) -> None:
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)
