"""H2P branch identification table (paper §IV-B).

An 8-way set-associative table of 3-bit saturating misprediction
counters indexed by branch PC.  An entry is created at counter value 1
when a branch mispredicts; the counter increments on every further
misprediction.  A branch is H2P while its counter exceeds the
threshold.  Every 50k retired instructions all counters decrement by
one, so branches below ~0.02 MPKI decay out; zero-counter entries are
preferred victims.
"""

from __future__ import annotations

from collections import OrderedDict

from .config import TeaConfig


class H2PTable:
    """Per-branch misprediction counters with periodic decay."""

    def __init__(self, config: TeaConfig | None = None):
        self.config = config or TeaConfig()
        cfg = self.config
        self.num_sets = max(1, cfg.h2p_entries // cfg.h2p_ways)
        # Sets keyed by pc; OrderedDict order is LRU (oldest first).
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.insertions = 0
        self.evictions = 0

    def _set_for(self, pc: int) -> OrderedDict[int, int]:
        return self._sets[(pc >> 2) % self.num_sets]

    def record_mispredict(self, pc: int) -> None:
        """Train on a retired misprediction of the branch at ``pc``."""
        cset = self._set_for(pc)
        if pc in cset:
            cset[pc] = min(cset[pc] + 1, self.config.h2p_counter_max)
            cset.move_to_end(pc)
            return
        if len(cset) >= self.config.h2p_ways:
            self._evict(cset)
        cset[pc] = 1
        self.insertions += 1

    def _evict(self, cset: OrderedDict[int, int]) -> None:
        # Prefer a zero-counter victim; otherwise LRU.
        for pc, counter in cset.items():
            if counter == 0:
                del cset[pc]
                self.evictions += 1
                return
        cset.popitem(last=False)
        self.evictions += 1

    def seed(self, pc: int, mispredicts: int) -> None:
        """Warm-start an entry from a checkpointed misprediction count.

        Replays ``mispredicts`` training events through the normal
        insertion/eviction path (clamped by the counter's saturation),
        so sampled-simulation windows start with the H2P population the
        functional fast-forward observed instead of a cold table.
        """
        for _ in range(min(mispredicts, self.config.h2p_counter_max)):
            self.record_mispredict(pc)

    def is_h2p(self, pc: int) -> bool:
        """True when the branch is currently classified hard-to-predict."""
        counter = self._set_for(pc).get(pc)
        return counter is not None and counter > self.config.h2p_threshold

    def counter(self, pc: int) -> int:
        return self._set_for(pc).get(pc, 0)

    def periodic_decrement(self) -> None:
        """Decay pass run every ``h2p_decrement_period`` instructions."""
        for cset in self._sets:
            for pc in list(cset):
                if cset[pc] > 0:
                    cset[pc] -= 1

    def h2p_pcs(self) -> set[int]:
        """All PCs currently classified as H2P (telemetry/tests)."""
        return {
            pc
            for cset in self._sets
            for pc, counter in cset.items()
            if counter > self.config.h2p_threshold
        }
