"""Block Cache: per-basic-block dependence-chain bit-masks (§IV-C).

Each entry is tagged by a basic block's start PC and holds a bit-mask
over the block's instructions (bit set = instruction is in some H2P
dependence chain).  Storage is counted in 8-uop data entries: a block
whose mask selects ``k`` uops costs ``ceil(k/8)`` entries out of 512.
Blocks whose mask is empty live in a separate 256-entry tag-only store
(the paper's optimization for perlbench/gcc/omnetpp/deepsjeng/leela):
an empty hit tells the TEA thread to keep going, costing no data
storage.

With the masks feature on, a new mask ORs into the existing one
(combining chains across control flows, §III-E); with it off the new
mask replaces the old (the "no masks" ablation).
"""

from __future__ import annotations

from collections import OrderedDict

from .config import TeaConfig


class BlockCache:
    """Mask store with LRU eviction in data-entry units."""

    def __init__(self, config: TeaConfig | None = None):
        self.config = config or TeaConfig()
        # bb_start -> mask (non-empty); OrderedDict order is LRU.
        self._main: OrderedDict[int, int] = OrderedDict()
        self._main_cost = 0
        # bb_start -> True for empty-mask blocks.
        self._empty: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.empty_hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.mask_resets = 0

    # ------------------------------------------------------------------
    def _cost(self, mask: int) -> int:
        uops = bin(mask).count("1")
        return max(1, -(-uops // self.config.uops_per_entry))

    def lookup(self, bb_start: int) -> int | None:
        """Mask for a block: ``None`` = miss, ``0`` = empty-tag hit."""
        mask = self._main.get(bb_start)
        if mask is not None:
            self._main.move_to_end(bb_start)
            self.hits += 1
            return mask
        if bb_start in self._empty:
            self._empty.move_to_end(bb_start)
            self.empty_hits += 1
            return 0
        self.misses += 1
        return None

    def peek(self, bb_start: int) -> int | None:
        """Lookup without LRU/stat side effects (used by tests)."""
        mask = self._main.get(bb_start)
        if mask is not None:
            return mask
        return 0 if bb_start in self._empty else None

    # ------------------------------------------------------------------
    def insert(self, bb_start: int, mask: int) -> None:
        """Install/merge the mask for a basic block."""
        self.insertions += 1
        existing = self._main.pop(bb_start, None)
        if existing is not None:
            self._main_cost -= self._cost(existing)
        else:
            self._empty.pop(bb_start, None)
        if self.config.use_masks and existing is not None:
            mask |= existing
        if mask == 0:
            self._empty[bb_start] = True
            while len(self._empty) > self.config.empty_tag_entries:
                self._empty.popitem(last=False)
                self.evictions += 1
            return
        self._main[bb_start] = mask
        self._main_cost += self._cost(mask)
        while self._main_cost > self.config.block_cache_entries and self._main:
            _, victim_mask = self._main.popitem(last=False)
            self._main_cost -= self._cost(victim_mask)
            self.evictions += 1

    def reset_masks(self) -> None:
        """Periodic phase-change reset (paper: every 500k instrs).

        Drops all entries; chains are quickly re-learned by subsequent
        Backward Dataflow Walks.  (The paper resets the bit-masks; we
        drop the tags too, which converges to the same state after one
        walk and avoids tracking stale tag-only entries.)
        """
        self._main.clear()
        self._empty.clear()
        self._main_cost = 0
        self.mask_resets += 1

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> tuple[int, int]:
        """(data-entry cost used, empty-tag entries used)."""
        return self._main_cost, len(self._empty)

    def __len__(self) -> int:
        return len(self._main) + len(self._empty)
