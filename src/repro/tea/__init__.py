"""The TEA thread: timely, efficient, and accurate branch precomputation."""

from .block_cache import BlockCache
from .config import TeaConfig, tea_ablation
from .controller import TeaController
from .fill_buffer import (
    FillBuffer,
    FillEntry,
    WalkResult,
    backward_dataflow_walk,
)
from .h2p_table import H2PTable
from .store_cache import HALF_LINE_BYTES, TeaStoreCache

__all__ = [
    "BlockCache",
    "TeaConfig",
    "tea_ablation",
    "TeaController",
    "FillBuffer",
    "FillEntry",
    "WalkResult",
    "backward_dataflow_walk",
    "H2PTable",
    "HALF_LINE_BYTES",
    "TeaStoreCache",
]
