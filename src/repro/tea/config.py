"""TEA thread configuration (paper Table II + §III feature knobs).

The feature flags map one-to-one to the ablation configurations of the
paper's Fig. 10:

* ``trace_memory``  — "no mem" when False (§III-D);
* ``use_masks``     — "no masks" when False: Block Cache entries are
  overwritten instead of OR-combined and Backward Dataflow Walks may
  only start at H2P branches (§III-C/E);
* ``only_loops``    — chains recorded only between two consecutive
  instances of an H2P branch (§V-E);
* ``early_resolution`` — False gives the prefetch-only mode of §V-B.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TeaConfig:
    """Structures and policies of the TEA thread."""

    # Backend partition (paper §IV-E).
    rs_entries: int = 192
    physical_registers: int = 192
    dedicated_engine: bool = False
    dedicated_execution_units: int = 16
    # Frontend.
    frontend_delay: int = 9
    fetch_width: int = 8
    rename_pipe_capacity: int = 64
    # H2P table (paper §IV-B).
    h2p_entries: int = 256
    h2p_ways: int = 8
    h2p_counter_max: int = 7       # 3-bit counter
    h2p_threshold: int = 1         # H2P when counter > threshold
    h2p_decrement_period: int = 50_000
    # Fill Buffer + Backward Dataflow Walk (paper §IV-C).
    fill_buffer_size: int = 512
    walk_cycles: int = 500
    mem_source_entries: int = 16
    # Block Cache (paper §IV-C).
    block_cache_entries: int = 512
    empty_tag_entries: int = 256
    uops_per_entry: int = 8
    mask_reset_period: int = 500_000
    # Store data cache (paper §IV-E).
    store_cache_halflines: int = 16
    # Termination policy (paper §V-B).
    max_late_resolutions: int = 4
    # Graceful degradation: accuracy gating (repro.verify PR; the
    # Bullseye/LDBP-style confidence filtering the paper's 99.3%
    # accuracy leans on implicitly).  Accuracy counters are always
    # maintained; the *actions* below are gated on ``accuracy_gating``.
    #
    # ``chain_*`` knobs act per H2P branch PC: once a chain has
    # ``chain_min_samples`` resolutions and its correct fraction over
    # the decaying window falls below ``chain_disable_threshold``, its
    # early flushes are suppressed (``tea_chain_disabled`` event) until
    # ``chain_reenable_period`` further retirements have elapsed
    # (``tea_chain_enabled``).  ``kill_*`` knobs act globally: sustained
    # accuracy below ``kill_threshold`` after ``kill_min_samples``
    # resolutions disables the TEA thread for the rest of the run
    # (``tea_degraded`` event, SimStats.tea_killed).
    accuracy_gating: bool = True
    chain_accuracy_window: int = 64      # decay-halve counters every N samples
    chain_disable_threshold: float = 0.5
    chain_min_samples: int = 16
    chain_reenable_period: int = 50_000  # retirements before re-enable
    kill_threshold: float = 0.25
    kill_min_samples: int = 512
    # Thread-construction features (paper §III, ablated in Fig. 10).
    trace_memory: bool = True
    use_masks: bool = True
    only_loops: bool = False
    early_resolution: bool = True
    # Static pre-screen (repro.analysis.chains): when set, only branch
    # PCs in this allow mask may be treated as H2P — denied branches
    # never seed Backward Dataflow Walks, so no chain slots, walks, or
    # early flushes are ever spent on them.  ``None`` disables masking
    # (every branch is eligible, the paper's behaviour).
    branch_mask: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        def require(condition: bool, message: str) -> None:
            if not condition:
                from ..core.config import ConfigError

                raise ConfigError(message)

        for name in (
            "rs_entries",
            "physical_registers",
            "dedicated_execution_units",
            "fetch_width",
            "rename_pipe_capacity",
            "h2p_entries",
            "h2p_ways",
            "h2p_decrement_period",
            "fill_buffer_size",
            "block_cache_entries",
            "uops_per_entry",
            "mask_reset_period",
            "store_cache_halflines",
        ):
            require(
                getattr(self, name) >= 1,
                f"TeaConfig.{name} must be >= 1, got {getattr(self, name)}",
            )
        for name in (
            "frontend_delay",
            "walk_cycles",
            "mem_source_entries",
            "empty_tag_entries",
            "max_late_resolutions",
        ):
            require(
                getattr(self, name) >= 0,
                f"TeaConfig.{name} must be >= 0, got {getattr(self, name)}",
            )
        for name in (
            "chain_accuracy_window",
            "chain_min_samples",
            "chain_reenable_period",
            "kill_min_samples",
        ):
            require(
                getattr(self, name) >= 1,
                f"TeaConfig.{name} must be >= 1, got {getattr(self, name)}",
            )
        for name in ("chain_disable_threshold", "kill_threshold"):
            value = getattr(self, name)
            require(
                0.0 <= value <= 1.0,
                f"TeaConfig.{name} must be in [0, 1], got {value}",
            )
        require(
            self.h2p_ways <= self.h2p_entries,
            f"TeaConfig.h2p_ways ({self.h2p_ways}) cannot exceed "
            f"h2p_entries ({self.h2p_entries})",
        )
        if self.branch_mask is not None:
            require(
                all(isinstance(pc, int) and pc >= 0 for pc in self.branch_mask),
                "TeaConfig.branch_mask must hold non-negative branch PCs",
            )
            require(
                tuple(sorted(set(self.branch_mask))) == self.branch_mask,
                "TeaConfig.branch_mask must be sorted and duplicate-free "
                "(it participates in config digests)",
            )
        require(
            0 <= self.h2p_threshold < self.h2p_counter_max,
            f"TeaConfig.h2p_threshold ({self.h2p_threshold}) must satisfy "
            f"0 <= threshold < h2p_counter_max ({self.h2p_counter_max}); "
            f"otherwise no branch can ever be identified as H2P",
        )


def tea_ablation(name: str) -> TeaConfig:
    """Named ablation configs used by Fig. 10 experiments.

    ``tea`` (all features), ``only_loops``, ``no_masks``, ``no_mem``,
    and ``no_features`` (everything off, the paper's 39%-coverage
    point).
    """
    base = TeaConfig()
    variants = {
        "tea": base,
        "only_loops": replace(base, only_loops=True),
        "no_masks": replace(base, use_masks=False),
        "no_mem": replace(base, trace_memory=False),
        "no_features": replace(
            base, only_loops=True, use_masks=False, trace_memory=False
        ),
    }
    try:
        return variants[name]
    except KeyError:
        raise ValueError(
            f"unknown ablation {name!r}; choose from {sorted(variants)}"
        ) from None
