"""Fill Buffer and Backward Dataflow Walk (paper §III-A, §IV-C).

The Fill Buffer samples retired uops in program order.  When full, a
Backward Dataflow Walk runs from the youngest entry toward the oldest,
maintaining a *Source List* — a register bit-vector plus a small
bounded buffer of memory word addresses — and marking every uop that
produces a value the marked set consumes:

* An H2P branch (or, with the masks feature, a uop that was fetched by
  the TEA thread — the paper's §III-C re-seeding) *initiates*: it is
  marked and its sources join the Source List.
* A uop that writes a register/memory word in the Source List is
  marked; its destination leaves the list and its sources join it.
  Marked loads add their word address (memory tracing feature); marked
  stores remove theirs.

The walk is pure: it returns the marked flags and the index where it
stopped, letting the controller model the ~500-cycle walk duration and
apply Block Cache updates at walk completion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..memory.memory_image import align_word
from .config import TeaConfig


@dataclass(frozen=True, slots=True)
class FillEntry:
    """One retired uop as recorded in the Fill Buffer (16B in paper)."""

    pc: int
    dst: int | None
    srcs: tuple[int, ...]
    is_load: bool
    is_store: bool
    mem_addr: int | None
    is_h2p_branch: bool
    chain_seed: bool      # was fetched by the TEA thread (bit-mask hit)
    bb_start: int
    bb_offset: int        # instruction index within the basic block


class _MemSourceBuffer:
    """Bounded FIFO set of word addresses (the 16-entry mem buffer)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._words: OrderedDict[int, bool] = OrderedDict()
        self.overflows = 0

    def add(self, addr: int) -> None:
        word = align_word(addr)
        if word in self._words:
            self._words.move_to_end(word)
            return
        if len(self._words) >= self.capacity:
            self._words.popitem(last=False)
            self.overflows += 1
        self._words[word] = True

    def discard(self, addr: int) -> None:
        self._words.pop(align_word(addr), None)

    def __contains__(self, addr: int) -> bool:
        return align_word(addr) in self._words

    def __len__(self) -> int:
        return len(self._words)


@dataclass
class WalkResult:
    """Outcome of one Backward Dataflow Walk."""

    marked: list[bool]
    stop_index: int       # oldest index examined (inclusive)
    initiations: int
    marked_count: int


def backward_dataflow_walk(
    entries: list[FillEntry],
    config: TeaConfig,
    initiator_pc: int | None = None,
) -> WalkResult:
    """Run the Backward Dataflow Walk over a full Fill Buffer.

    With ``initiator_pc`` set, *only* H2P entries at that PC initiate
    (and §III-C chain-seed re-seeding is disabled): the walk computes
    the dependence chain attributable to that single branch.  This is
    the replay mode the static-slicer oracle uses to score chain
    membership per H2P branch (:mod:`repro.analysis.oracle`); the
    default ``None`` is the production walk, bit-for-bit unchanged.
    """
    n = len(entries)
    marked = [False] * n
    reg_sources = 0
    mem_sources = _MemSourceBuffer(config.mem_source_entries)
    seen_h2p: set[int] = set()
    initiations = 0
    stop_index = 0

    def add_sources(entry: FillEntry) -> None:
        nonlocal reg_sources
        if entry.dst is not None:
            reg_sources &= ~(1 << entry.dst)
        for reg in entry.srcs:
            reg_sources |= 1 << reg
        if entry.is_load and config.trace_memory and entry.mem_addr is not None:
            mem_sources.add(entry.mem_addr)
        if entry.is_store and config.trace_memory and entry.mem_addr is not None:
            mem_sources.discard(entry.mem_addr)

    index = n - 1
    while index >= 0:
        entry = entries[index]
        stop_index = index
        is_initiator_site = entry.is_h2p_branch and (
            initiator_pc is None or entry.pc == initiator_pc
        )
        if is_initiator_site and config.only_loops:
            if entry.pc in seen_h2p:
                # "only loops": chains span at most one iteration —
                # stop at the previous instance of an H2P branch.
                break
            seen_h2p.add(entry.pc)
        if initiator_pc is None:
            initiate = entry.is_h2p_branch or (config.use_masks and entry.chain_seed)
        else:
            initiate = is_initiator_site
        if initiate:
            marked[index] = True
            initiations += 1
            add_sources(entry)
            index -= 1
            continue
        writes_reg = entry.dst is not None and (reg_sources >> entry.dst) & 1
        writes_mem = (
            entry.is_store
            and config.trace_memory
            and entry.mem_addr is not None
            and entry.mem_addr in mem_sources
        )
        if writes_reg or writes_mem:
            marked[index] = True
            add_sources(entry)
        index -= 1

    marked_count = sum(marked)
    return WalkResult(marked, stop_index, initiations, marked_count)


class FillBuffer:
    """Retired-uop sampling buffer feeding the walk."""

    def __init__(self, config: TeaConfig | None = None):
        self.config = config or TeaConfig()
        self.entries: list[FillEntry] = []
        self.walks_performed = 0

    def __len__(self) -> int:
        return len(self.entries)

    def full(self) -> bool:
        return len(self.entries) >= self.config.fill_buffer_size

    def insert(self, entry: FillEntry) -> None:
        self.entries.append(entry)

    def run_walk(self) -> tuple[list[FillEntry], WalkResult]:
        """Walk the (full) buffer; returns entries + result and clears."""
        entries = self.entries
        result = backward_dataflow_walk(entries, self.config)
        self.entries = []
        self.walks_performed += 1
        return entries, result
