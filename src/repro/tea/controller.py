"""The TEA thread controller: construction, fetch, execution, flushes.

This object plugs into the :class:`~repro.core.pipeline.Pipeline` via
narrow hooks and implements the paper's mechanism end to end:

* **Construction** (§III-A, §IV-C): retired uops sample into the Fill
  Buffer; full buffers trigger a ~500-cycle Backward Dataflow Walk
  whose marks are grouped into per-basic-block bit-masks and merged
  into the Block Cache.
* **Fetch** (§III-B, §IV-D): the shadow FTQ (same blocks, same
  timestamps as the main thread) drives Block Cache lookups; chain
  uops flow through a 9-cycle shadow frontend into a shadow RAT.
* **Execution** (§IV-E): chain uops use the TEA RS/PRF partition with
  issue priority; physical registers are freed by the valid-bit +
  reference-counter scheme; stores go to the TEA store cache.
* **Early flushes** (§IV-F): a resolved TEA branch updates the IFBQ
  entry for its timestamp; a disagreement with the recorded prediction
  triggers a misprediction flush through the existing flush datapath.
* **Termination** (§IV-G): Block Cache misses drain the thread; RAT
  poisoning preempts incorrect chains, blocking younger TEA flushes.
"""

from __future__ import annotations

from collections import deque

from ..core.dynamic_uop import DynUop, UopState
from ..core.rename import RegisterAliasTable, rename_sources
from ..isa import INSTRUCTION_BYTES, REG_ZERO, UopClass
from ..isa.registers import NUM_ARCH_REGS
from .block_cache import BlockCache
from .config import TeaConfig
from .fill_buffer import FillBuffer, FillEntry
from .h2p_table import H2PTable
from .store_cache import TeaStoreCache

_REFCOUNT_MAX = 31  # 5-bit reference counter (paper §IV-E)


class TeaController:
    """Implements the TEA thread on top of a pipeline instance."""

    def __init__(self, pipeline, config: TeaConfig | None = None):
        self.p = pipeline
        self.config = config or TeaConfig()
        cfg = self.config
        self.h2p = H2PTable(cfg)
        self.fill_buffer = FillBuffer(cfg)
        self.block_cache = BlockCache(cfg)
        self.store_cache = TeaStoreCache(cfg)
        self.shadow_rat = RegisterAliasTable()
        # Thread state.
        self.active = False
        self.draining = False
        # Initiation synchronization: the shadow RAT copy happens at
        # the exact point the main thread has renamed everything older
        # than the TEA thread's first uop (paper §IV-D: "before the
        # first TEA thread instruction is renamed").
        self.rat_synced = False
        self.start_seq: int | None = None
        self.rename_pipe: deque[DynUop] = deque()
        self.live_uops: list[DynUop] = []
        # In-flight TEA stores, for intra-thread store->load ordering:
        # a TEA load waits for older TEA stores so chains that pass
        # values through memory (§III-D: push/pop argument passing)
        # read the store cache, not stale committed state.
        self.pending_stores: list[DynUop] = []
        self.chain_seqs: dict[int, bool] = {}
        self.poison = [False] * NUM_ARCH_REGS
        self.poison_block_seq: int | None = None
        self.late_count = 0
        # TEA preg bookkeeping: valid bit + 5-bit refcount per preg.
        self._valid: dict[int, bool] = {}
        self._refcount: dict[int, int] = {}
        self._refcount_saturated: set[int] = set()
        # TEA pregs occupy the preg ids above the main pool; a plain
        # comparison against this floor replaces _is_tea_preg() in the
        # per-source hot loops.
        self._tea_preg_floor = pipeline.prf.main_size
        # Mid-block fetch cursor (a block's chain segment can exceed
        # the 8-uop fetch width).
        self._pending_block = None
        self._pending_index = 0
        # Deferred walk results: the walk occupies the state machine
        # for ~walk_cycles; Block Cache updates land at completion.
        self._walk_start_cycle = -1
        self._walk_done_cycle = -1
        self._pending_walk: tuple[list[FillEntry], object] | None = None
        self._retire_count = 0
        # Graceful degradation (accuracy gating): per-chain decaying
        # correct/wrong counters fed by main-thread resolutions, the
        # disabled-chain set with its re-enable watermark, and the
        # global kill-switch.  Counters are always maintained; actions
        # are gated on ``config.accuracy_gating``.
        self._chain_correct: dict[int, int] = {}
        self._chain_wrong: dict[int, int] = {}
        self.disabled_chains: dict[int, int] = {}  # pc -> retire count
        self._next_reenable: int | None = None
        self._global_correct = 0
        self._global_total = 0
        self.killed = False
        # Static pre-screen (repro.analysis.chains): an allow mask of
        # branch PCs.  Denied branches are never flagged H2P in the
        # Fill Buffer, so they cannot seed walks or own chains.  The
        # denial event fires once per PC to keep the bus quiet.
        self._branch_mask: frozenset[int] | None = (
            frozenset(cfg.branch_mask) if cfg.branch_mask is not None else None
        )
        self._mask_denied: set[int] = set()

    # ==================================================================
    # Retirement side: H2P training + Fill Buffer + periodic tasks
    # ==================================================================
    def on_retire(self, uop: DynUop) -> None:
        cfg = self.config
        self._retire_count += 1
        if (
            self._next_reenable is not None
            and self._retire_count >= self._next_reenable
        ):
            self._reenable_chains()
        instr = uop.instr
        if instr.is_branch and uop.branch is not None and uop.branch.can_mispredict:
            if uop.mispredicted:
                obs = self.p.obs
                if obs is None:
                    self.h2p.record_mispredict(instr.pc)
                else:
                    was_h2p = self.h2p.is_h2p(instr.pc)
                    self.h2p.record_mispredict(instr.pc)
                    if not was_h2p and self.h2p.is_h2p(instr.pc):
                        obs.emit(
                            "h2p_identified",
                            pc=instr.pc,
                            seq=uop.seq,
                            counter=self.h2p.counter(instr.pc),
                        )
        if self._retire_count % cfg.h2p_decrement_period == 0:
            self.h2p.periodic_decrement()
        if self._retire_count % cfg.mask_reset_period == 0:
            self.block_cache.reset_masks()
        self._maybe_finish_walk()
        if self.p.cycle < self._walk_done_cycle:
            return  # retired uops during a walk are discarded (§IV-C)
        if instr.uop_class in (UopClass.NOP, UopClass.HALT):
            return
        block = self.p.program.block_containing(instr.pc)
        if block is None:
            return
        is_h2p = instr.is_branch and self.h2p.is_h2p(instr.pc)
        if is_h2p and self._branch_mask is not None and instr.pc not in self._branch_mask:
            is_h2p = False
            if instr.pc not in self._mask_denied:
                self._mask_denied.add(instr.pc)
                if self.p.obs is not None:
                    self.p.obs.emit("tea_mask_denied", pc=instr.pc)
        self.fill_buffer.insert(
            FillEntry(
                pc=instr.pc,
                dst=instr.dst if instr.dst not in (None, REG_ZERO) else None,
                srcs=instr.srcs,
                is_load=instr.is_load,
                is_store=instr.is_store,
                mem_addr=uop.mem_addr,
                is_h2p_branch=is_h2p,
                chain_seed=uop.in_chain,
                bb_start=block.start_pc,
                bb_offset=(instr.pc - block.start_pc) // INSTRUCTION_BYTES,
            )
        )
        if self.fill_buffer.full():
            entries, result = self.fill_buffer.run_walk()
            self._walk_start_cycle = self.p.cycle
            self._walk_done_cycle = self.p.cycle + cfg.walk_cycles
            self._pending_walk = (entries, result)
            if self.p.obs is not None:
                self.p.obs.emit(
                    "walk_start",
                    entries=len(entries),
                    initiations=result.initiations,
                )

    def _maybe_finish_walk(self) -> None:
        if self._pending_walk is None or self.p.cycle < self._walk_done_cycle:
            return
        entries, result = self._pending_walk
        marked, stop_index = result.marked, result.stop_index
        self._pending_walk = None
        obs_hook = self.p.obs
        if obs_hook is not None and obs_hook.wants("walk_done"):
            # Firehose hook for the static-slicer oracle: the raw
            # entries + walk result, before they are folded into masks.
            obs_hook.emit("walk_done", entries=entries, result=result)
        masks: dict[int, int] = {}
        for i in range(stop_index, len(entries)):
            entry = entries[i]
            masks.setdefault(entry.bb_start, 0)
            if marked[i]:
                masks[entry.bb_start] |= 1 << entry.bb_offset
        evictions_before = self.block_cache.evictions
        for bb_start, mask in masks.items():
            self.block_cache.insert(bb_start, mask)
        obs = self.p.obs
        if obs is not None:
            evicted = self.block_cache.evictions - evictions_before
            if evicted:
                obs.emit("block_cache_evict", count=evicted)
            obs.emit(
                "walk_finish",
                chain_length=result.marked_count,
                depth=len(entries) - stop_index,
                initiations=result.initiations,
                blocks=len(masks),
                start_cycle=self._walk_start_cycle,
            )

    # ==================================================================
    # Shadow fetch: shadow FTQ -> Block Cache -> rename pipe
    # ==================================================================
    def fetch(self) -> None:
        self._maybe_finish_walk()
        if self.draining:
            self._check_drain_complete()
            if self.draining:
                self._discard_stale_blocks()
                return
        if len(self.rename_pipe) >= self.config.rename_pipe_capacity:
            return
        if self.active:
            self._fetch_active()
        else:
            self._scan_for_initiation()

    def _discard_stale_blocks(self) -> None:
        """While not fetching, keep the shadow FTQ from backing up."""
        shadow = self.p.frontend.shadow_ftq
        while shadow and shadow[0].last_seq <= self.p.last_renamed_seq:
            shadow.popleft()

    def _scan_for_initiation(self) -> None:
        """Inactive: look for a Block Cache hit ahead of main rename."""
        shadow = self.p.frontend.shadow_ftq
        self._discard_stale_blocks()
        if self.killed:
            return  # kill-switch: keep draining the shadow FTQ, never restart
        scanned = 0
        while shadow and scanned < 8:
            block = shadow[0]
            if not block.uops:
                shadow.popleft()
                continue
            if block.first_seq <= self.p.last_renamed_seq:
                shadow.popleft()
                continue
            if self._block_has_chain_uops(block):
                self._initiate(block.first_seq)
                self._fetch_active()
                return
            shadow.popleft()
            scanned += 1

    def _block_has_chain_uops(self, block) -> bool:
        for bb_start in self._block_bb_starts(block):
            mask = self.block_cache.peek(bb_start)
            if mask:
                return True
        return False

    def _block_bb_starts(self, block) -> list[int]:
        starts = []
        last = None
        by_pc = self.p.program._block_start_by_pc
        for fuop in block.uops:
            start = by_pc.get(fuop.instr.pc)
            if start is not None and start != last:
                starts.append(start)
                last = start
        return starts

    def _initiate(self, start_seq: int) -> None:
        """Start the TEA thread; the RAT copy waits for rename sync.

        Fetch begins immediately (the shadow frontend buffers chain
        uops), but renaming is held until the main thread has renamed
        exactly the uops older than ``start_seq`` — at that instant the
        main RAT is copied into the shadow RAT, so both threads start
        from an identical register view and the poison bits cover all
        later divergence.
        """
        self.poison = [False] * NUM_ARCH_REGS
        self.poison_block_seq = None
        self.late_count = 0
        self._reset_tea_pregs()
        self.store_cache.clear()
        self.active = True
        self.start_seq = start_seq
        if self.p.last_renamed_seq == start_seq - 1:
            self.shadow_rat.copy_from(self.p.rat)
            self.rat_synced = True
        else:
            self.rat_synced = False
        self.p.stats.tea_initiations += 1
        if self.p.obs is not None:
            self.p.obs.emit("tea_initiate", seq=start_seq)

    def _fetch_active(self) -> None:
        """Fetch up to ``fetch_width`` chain uops from one block."""
        budget = self.config.fetch_width
        if self._pending_block is not None:
            budget = self._fetch_from_block(self._pending_block, budget)
            if self._pending_block is not None or budget <= 0:
                return
        shadow = self.p.frontend.shadow_ftq
        if not shadow:
            return
        block = shadow.popleft()
        # Per-basic-block Block Cache lookups; a miss terminates.
        obs = self.p.obs
        for bb_start in self._block_bb_starts(block):
            mask = self.block_cache.lookup(bb_start)
            if mask is None:
                if obs is not None:
                    obs.emit("block_cache_miss", pc=bb_start, seq=block.first_seq)
                self._terminate(drain=True, reason="block_cache_miss")
                return
            if obs is not None:
                obs.emit(
                    "block_cache_hit",
                    pc=bb_start,
                    seq=block.first_seq,
                    empty=mask == 0,
                )
        self._pending_block = block
        self._pending_index = 0
        self._fetch_from_block(block, budget)

    def _fetch_from_block(self, block, budget: int) -> int:
        p = self.p
        by_pc = p.program._block_start_by_pc
        uops = block.uops
        n = len(uops)
        index = self._pending_index
        fetched = 0
        cycle = p.cycle
        ready = cycle + self.config.frontend_delay
        peek = self.block_cache.peek
        pipe_append = self.rename_pipe.append
        chain_seqs = self.chain_seqs
        # Consecutive uops usually share a basic block; memoise the
        # Block Cache mask per bb within this call (it cannot change
        # mid-loop).
        masks: dict[int, int] = {}
        while index < n and budget > 0:
            fuop = uops[index]
            index += 1
            pc = fuop.instr.pc
            bb_start = by_pc.get(pc)
            if bb_start is None:
                continue
            mask = masks.get(bb_start)
            if mask is None:
                mask = peek(bb_start) or 0
                masks[bb_start] = mask
            offset = (pc - bb_start) >> 2
            if (mask >> offset) & 1:
                dyn = DynUop(fuop.seq, fuop.instr, fuop.branch, is_tea=True)
                dyn.fetch_cycle = cycle
                dyn.rename_ready_cycle = ready
                dyn.in_chain = True
                pipe_append(dyn)
                chain_seqs[fuop.seq] = True
                budget -= 1
                fetched += 1
        self._pending_index = index
        if fetched:
            p.stats.tea_fetched_uops += fetched
            if p.obs is not None:
                p.obs.emit("shadow_fetch", seq=block.first_seq, uops=fetched)
        if index >= n:
            self._pending_block = None
            self._pending_index = 0
        return budget

    # ==================================================================
    # Shadow rename (issue priority: runs before main rename)
    # ==================================================================
    def rename_first(self, width: int) -> int:
        """Rename TEA uops; returns issue slots left for the main thread.

        With a dedicated execution engine the TEA thread has its own
        rename/issue bandwidth and the main thread keeps full width.
        """
        budget = self.config.fetch_width if self.config.dedicated_engine else width
        used = 0
        while budget > 0 and self.rename_pipe:
            uop = self.rename_pipe[0]
            if uop.rename_ready_cycle > self.p.cycle:
                break
            if not self._try_rename_tea(uop):
                break
            self.rename_pipe.popleft()
            budget -= 1
            used += 1
        if self.config.dedicated_engine:
            return width
        return width - used

    def _try_rename_tea(self, uop: DynUop) -> bool:
        if not self.rat_synced:
            return False
        p = self.p
        sched = p.scheduler
        if not sched.tea_has_space():
            return False
        instr = uop.instr
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        preg = None
        if dst is not None:
            preg = p.prf.allocate(tea=True)
            if preg is None:
                return False
        srcs = rename_sources(self.shadow_rat, instr.srcs)
        uop.src_pregs = srcs
        # Take a refcount on each TEA source preg.  When the 5-bit
        # counter saturates the preg is pinned until the thread resets
        # (safe side of the paper's rare overflow).
        floor = self._tea_preg_floor
        refcount = self._refcount
        for src in srcs:
            if src <= floor:
                continue
            count = refcount.get(src, 0)
            if count >= _REFCOUNT_MAX:
                self._refcount_saturated.add(src)
            else:
                refcount[src] = count + 1
        if dst is not None:
            uop.dst_preg = preg
            self._valid[preg] = True
            refcount.setdefault(preg, 0)
            old = self.shadow_rat.set(dst, preg)
            self._release_mapping(old)
        uop.state = UopState.RENAMED
        uop.rename_cycle = p.cycle
        sched.insert(uop)
        self.live_uops.append(uop)
        if instr.is_store:
            self.pending_stores.append(uop)
        return True

    def load_ordered(self, uop: DynUop) -> bool:
        """May this TEA load issue? (all older TEA stores executed)"""
        for store in self.pending_stores:
            if store.seq < uop.seq and store.state is UopState.RENAMED:
                return False
        return True

    # -- physical register reference counting --------------------------
    def _is_tea_preg(self, preg: int) -> bool:
        return preg > self._tea_preg_floor

    def on_operands_read(self, uop: DynUop) -> None:
        """Called when a TEA uop reads its sources (enter execution)."""
        floor = self._tea_preg_floor
        refcount = self._refcount
        saturated = self._refcount_saturated
        for preg in uop.src_pregs:
            if preg <= floor or preg in saturated:
                continue
            count = refcount.get(preg, 0)
            if count > 0:
                refcount[preg] = count - 1
                if count == 1 and not self._valid.get(preg, True):
                    self._free_tea_preg(preg)

    def _release_mapping(self, old_preg: int) -> None:
        """A shadow-RAT mapping was overwritten; maybe free the preg."""
        if not self._is_tea_preg(old_preg):
            return
        self._valid[old_preg] = False
        if (
            self._refcount.get(old_preg, 0) == 0
            and old_preg not in self._refcount_saturated
        ):
            self._free_tea_preg(old_preg)

    def _free_tea_preg(self, preg: int) -> None:
        self._valid.pop(preg, None)
        self._refcount.pop(preg, None)
        self.p.prf.free(preg)

    def _reset_tea_pregs(self) -> None:
        prf = self.p.prf
        total = 1 + prf.main_size + prf.tea_size
        prf.tea_free = deque(range(1 + prf.main_size, total))
        self._valid.clear()
        self._refcount.clear()
        self._refcount_saturated.clear()

    # ==================================================================
    # Main-thread rename hook: bit-mask tagging + RAT poisoning
    # ==================================================================
    def is_chain_seq(self, seq: int) -> bool:
        return seq in self.chain_seqs

    def on_main_rename(self, uop: DynUop) -> None:
        self.chain_seqs.pop(uop.seq, None)
        if not (self.active or self.draining):
            return
        if self.active and not self.rat_synced:
            # Sequence numbers can have gaps (squashed uops never
            # rename), so sync on the first rename at or past the
            # boundary.  If that uop already belongs to the TEA region
            # (seq >= start_seq) its own destination write must be
            # excluded from the copy: the TEA thread re-executes it.
            if self.start_seq is None or uop.seq < self.start_seq - 1:
                return
            self.shadow_rat.copy_from(self.p.rat)
            if uop.seq >= self.start_seq and uop.old_dst_preg is not None:
                undo_dst = uop.instr.dst
                if undo_dst not in (None, REG_ZERO):
                    self.shadow_rat.set(undo_dst, uop.old_dst_preg)
            self.rat_synced = True
            if uop.seq < self.start_seq:
                return
            # Fall through: this uop is in the TEA region, apply the
            # poison bookkeeping to it as well.
        instr = uop.instr
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        if uop.in_chain:
            for reg in instr.srcs:
                if reg != REG_ZERO and self.poison[reg]:
                    self._poison_violation(uop.seq)
                    break
            if dst is not None:
                self.poison[dst] = False
        else:
            if dst is not None:
                self.poison[dst] = True

    def _poison_violation(self, seq: int) -> None:
        """A chain uop consumed a non-chain value: preempt the thread."""
        self.p.stats.tea_poison_terminations += 1
        if self.poison_block_seq is None or seq < self.poison_block_seq:
            self.poison_block_seq = seq
        if self.p.obs is not None:
            self.p.obs.emit("poison_term", seq=seq)
        self._terminate(drain=True, reason="poison")

    # ==================================================================
    # Graceful degradation: per-chain accuracy gating + kill-switch
    # ==================================================================
    def on_accuracy_sample(self, pc: int, correct: bool) -> None:
        """Main-thread resolution verdict for a TEA-resolved branch.

        Updates the per-chain decaying counters and the global tally,
        then (when ``accuracy_gating``) disables chains whose measured
        accuracy fell below ``chain_disable_threshold`` and fires the
        global kill-switch at sustained accuracy below
        ``kill_threshold``.  Counter updates are timing-neutral: with
        gating off (or thresholds never crossed) the simulation is
        cycle-identical to a build without this method.
        """
        cfg = self.config
        correct_by_pc = self._chain_correct
        wrong_by_pc = self._chain_wrong
        if correct:
            correct_by_pc[pc] = correct_by_pc.get(pc, 0) + 1
            self._global_correct += 1
        else:
            wrong_by_pc[pc] = wrong_by_pc.get(pc, 0) + 1
        self._global_total += 1
        good = correct_by_pc.get(pc, 0)
        bad = wrong_by_pc.get(pc, 0)
        if good + bad >= cfg.chain_accuracy_window:
            # Decay-halve so the counters track recent behaviour (and a
            # disabled chain can earn its way back after re-enable).
            correct_by_pc[pc] = good = good >> 1
            wrong_by_pc[pc] = bad = bad >> 1
        if not cfg.accuracy_gating or self.killed:
            return
        total = good + bad
        if (
            pc not in self.disabled_chains
            and total >= cfg.chain_min_samples
            and good < cfg.chain_disable_threshold * total
        ):
            self._disable_chain(pc, good, total)
        if (
            self._global_total >= cfg.kill_min_samples
            and self._global_correct < cfg.kill_threshold * self._global_total
        ):
            self._kill()

    def chain_accuracy(self, pc: int) -> float | None:
        """Measured accuracy of one chain (None before any sample)."""
        good = self._chain_correct.get(pc, 0)
        total = good + self._chain_wrong.get(pc, 0)
        return good / total if total else None

    def _disable_chain(self, pc: int, good: int, total: int) -> None:
        self.disabled_chains[pc] = self._retire_count
        self.p.stats.tea_chain_disables += 1
        due = self._retire_count + self.config.chain_reenable_period
        if self._next_reenable is None or due < self._next_reenable:
            self._next_reenable = due
        if self.p.obs is not None:
            self.p.obs.emit(
                "tea_chain_disabled", pc=pc, correct=good, samples=total
            )

    def _reenable_chains(self) -> None:
        """Retire-count watermark hit: re-enable chains past the decay
        period (their counters reset so they re-qualify from scratch)."""
        period = self.config.chain_reenable_period
        now = self._retire_count
        due = [
            pc
            for pc, disabled_at in self.disabled_chains.items()
            if now - disabled_at >= period
        ]
        for pc in due:
            del self.disabled_chains[pc]
            self._chain_correct.pop(pc, None)
            self._chain_wrong.pop(pc, None)
            self.p.stats.tea_chain_reenables += 1
            if self.p.obs is not None:
                self.p.obs.emit("tea_chain_enabled", pc=pc)
        if self.disabled_chains:
            self._next_reenable = min(self.disabled_chains.values()) + period
        else:
            self._next_reenable = None

    def _kill(self) -> None:
        """Sustained low accuracy: disable the TEA thread for good."""
        self.killed = True
        self.p.stats.tea_killed = 1
        if self.p.obs is not None:
            self.p.obs.emit(
                "tea_degraded",
                resolutions=self._global_total,
                correct=self._global_correct,
            )
        self._terminate(drain=True, reason="degraded")

    # ==================================================================
    # TEA execution callbacks
    # ==================================================================
    def load_value(self, addr: int):
        """TEA loads see the TEA store cache, then committed memory."""
        value = self.store_cache.load(addr)
        if value is not None:
            return value
        return self.p.memory.load(addr)

    def store_to_cache(self, uop: DynUop) -> None:
        self.store_cache.store(uop.mem_addr, uop.store_value)

    def on_tea_branch_resolved(self, uop: DynUop) -> None:
        """A TEA copy of an H2P branch finished execution (§IV-F)."""
        stats = self.p.stats
        if self.killed or uop.instr.pc in self.disabled_chains:
            # Accuracy gating: the chain (or the whole thread) is
            # degraded — the precomputed outcome is discarded before it
            # can reach the IFBQ or issue an early flush.
            stats.tea_suppressed_resolutions += 1
            if self.p.obs is not None:
                self.p.obs.emit(
                    "tea_resolve", pc=uop.instr.pc, seq=uop.seq, suppressed=True
                )
            return
        stats.tea_resolved_branches += 1
        obs = self.p.obs
        entry = self.p.ifbq.get(uop.seq)
        if entry is None or entry.main_resolved:
            # Late precomputation: the main branch got there first.
            if obs is not None:
                obs.emit("tea_resolve", pc=uop.instr.pc, seq=uop.seq, late=True)
            self.late_count += 1
            if self.late_count > self.config.max_late_resolutions:
                self._terminate(drain=True, reason="too_late")
            return
        entry.tea_resolved = True
        entry.tea_taken = uop.br_taken
        entry.tea_target = uop.br_target
        entry.tea_resolve_cycle = self.p.cycle
        if not self.config.early_resolution:
            if obs is not None:
                obs.emit("tea_resolve", pc=uop.instr.pc, seq=uop.seq, late=False)
            return  # prefetch-only mode (§V-B)
        if self.poison_block_seq is not None and uop.seq > self.poison_block_seq:
            entry.tea_blocked = True
            stats.tea_blocked_flushes += 1
            if obs is not None:
                obs.emit(
                    "tea_resolve",
                    pc=uop.instr.pc,
                    seq=uop.seq,
                    late=False,
                    blocked=True,
                )
            return
        info = entry.branch
        disagrees = uop.br_taken != info.predicted_taken or (
            uop.br_taken and uop.br_target != info.predicted_target
        )
        if obs is not None:
            obs.emit(
                "tea_resolve",
                pc=uop.instr.pc,
                seq=uop.seq,
                late=False,
                disagrees=disagrees,
            )
        if disagrees:
            entry.tea_flush_issued = True
            stats.early_flushes += 1
            if obs is not None:
                penalty = (
                    max(0, self.p.cycle - uop.fetch_cycle)
                    if uop.fetch_cycle >= 0
                    else 0
                )
                obs.emit(
                    "early_flush", pc=info.pc, seq=info.seq, penalty=penalty
                )
            self.p.flush_at_branch(info, uop.br_taken, uop.br_target)

    def on_tea_uop_done(self, uop: DynUop) -> None:
        if uop in self.live_uops:
            self.live_uops.remove(uop)
        if uop.instr.is_store and uop in self.pending_stores:
            self.pending_stores.remove(uop)
        self._check_drain_complete()

    # ==================================================================
    # Termination and flush recovery
    # ==================================================================
    def _terminate(self, drain: bool, reason: str = "drain") -> None:
        """Stop fetching; in-flight uops drain out (§IV-G)."""
        if self.active:
            self.p.stats.tea_terminations += 1
            if self.p.obs is not None:
                self.p.obs.emit("tea_terminate", reason=reason)
        self.active = False
        self._pending_block = None
        self._pending_index = 0
        if drain and (self.live_uops or self.rename_pipe):
            # Uops still in the shadow frontend never issue; discard.
            self.rename_pipe.clear()
            self.draining = True
        else:
            self._finish_drain()

    def _check_drain_complete(self) -> None:
        if self.draining and not self.live_uops:
            self._finish_drain()

    def _finish_drain(self) -> None:
        self.draining = False
        self.poison_block_seq = None
        self.pending_stores.clear()
        self._reset_tea_pregs()
        self.store_cache.clear()

    def on_flush(self, seq: int) -> None:
        """Any pipeline flush resets the TEA thread (resynchronized)."""
        if self.active and self.p.obs is not None:
            # Close the active span for the timeline exporters (not a
            # counted termination: the thread is reset, not drained).
            self.p.obs.emit("tea_terminate", reason="flush")
        for uop in self.live_uops:
            uop.state = UopState.SQUASHED
        self.live_uops.clear()
        self.pending_stores.clear()
        self.rename_pipe.clear()
        self.p.scheduler.clear_tea()
        self.active = False
        self.draining = False
        self.rat_synced = False
        self.start_seq = None
        self._pending_block = None
        self._pending_index = 0
        self.poison_block_seq = None
        self._reset_tea_pregs()
        self.store_cache.clear()
        # Chain-seq tags younger than the flush are stale.
        self.chain_seqs = {s: True for s in self.chain_seqs if s <= seq}
