"""Design-space sweeps for the paper's secondary observations.

The evaluation text makes several quantitative claims beyond the main
figures; each sweep here reproduces one:

* §IV-B  — H2P marking aggressiveness trades coverage against
  timeliness ("marking more branches as H2P improves coverage ...
  begins to drop off only when highly accurate branches are marked").
* §V-B  — deepsjeng/omnetpp are limited by Block Cache capacity
  (bigger Block Cache ⇒ better coverage on large-footprint codes).
* §III-B — the TEA thread's run-ahead distance is bounded by the
  fetch-queue size (128 addresses in the paper's design).
* §IV-H — a true 16-wide frontend costs far more than the TEA thread
  and yields little (~2.8%) because predictor bandwidth, not width,
  is the limiter.
"""

from __future__ import annotations

from ..core import Pipeline, SimConfig
from ..core.config import CoreConfig
from ..frontend.decoupled import FrontendConfig
from ..tea import TeaConfig
from ..workloads import make_workload
from .reporting import geomean, speedup_percent


def _run(workload_name: str, scale: str, config: SimConfig):
    wl = make_workload(workload_name, scale)
    pipeline = Pipeline(wl.program, wl.fresh_memory(), config)
    stats = pipeline.run(max_cycles=30_000_000)
    if pipeline.halted and wl.validate is not None:
        assert wl.validate(pipeline), f"{workload_name} failed validation"
    return stats


def h2p_marking_sweep(
    workloads: tuple[str, ...] = ("bfs", "mcf"),
    thresholds: tuple[int, ...] = (0, 1, 4, 6),
    scale: str = "tiny",
) -> dict:
    """Sweep how aggressively branches are classified H2P (paper §IV-B).

    The paper tunes this via the decrement period; at our run lengths
    the equivalent lever is the counter threshold.  Its observation —
    "marking more branches as H2P improves misprediction coverage and
    provides better performance" until clearly-predictable branches
    start to hurt timeliness — shows up as coverage falling when the
    threshold rises (fewer branches marked).
    """
    out: dict = {"thresholds": thresholds, "coverage": {}, "speedup": {}}
    for threshold in thresholds:
        tea = TeaConfig(h2p_threshold=threshold)
        coverages, speedups = [], []
        for name in workloads:
            base = _run(name, scale, SimConfig())
            stats = _run(name, scale, SimConfig(tea=tea))
            coverages.append(stats.coverage)
            speedups.append(speedup_percent(stats.ipc, base.ipc))
        out["coverage"][threshold] = sum(coverages) / len(coverages)
        out["speedup"][threshold] = sum(speedups) / len(speedups)
    return out


def block_cache_sweep(
    workloads: tuple[str, ...] = ("deepsjeng", "omnetpp"),
    sizes: tuple[int, ...] = (4, 16, 512),
    scale: str = "tiny",
) -> dict:
    """Sweep Block Cache capacity (paper §V-B).

    The paper reports deepsjeng/omnetpp gain ~5% from a larger Block
    Cache because their static footprints overflow 512 entries.
    """
    out: dict = {"sizes": sizes, "coverage": {}, "speedup": {}}
    for size in sizes:
        tea = TeaConfig(
            block_cache_entries=size, empty_tag_entries=max(2, size // 2)
        )
        coverages, speedups = [], []
        for name in workloads:
            base = _run(name, scale, SimConfig())
            stats = _run(name, scale, SimConfig(tea=tea))
            coverages.append(stats.coverage)
            speedups.append(speedup_percent(stats.ipc, base.ipc))
        out["coverage"][size] = sum(coverages) / len(coverages)
        out["speedup"][size] = sum(speedups) / len(speedups)
    return out


def ftq_sweep(
    workloads: tuple[str, ...] = ("bfs", "xz"),
    capacities: tuple[int, ...] = (8, 32, 128),
    scale: str = "tiny",
) -> dict:
    """Sweep the fetch-queue capacity (paper §III-B).

    The FTQ bounds how far the decoupled predictor — and therefore the
    TEA thread — can run ahead of the main thread.
    """
    out: dict = {"capacities": capacities, "speedup": {}, "cycles_saved": {}}
    for capacity in capacities:
        frontend = FrontendConfig(ftq_capacity=capacity)
        speedups, saved = [], []
        for name in workloads:
            base = _run(name, scale, SimConfig(frontend=frontend))
            stats = _run(name, scale, SimConfig(frontend=frontend, tea=TeaConfig()))
            speedups.append(speedup_percent(stats.ipc, base.ipc))
            saved.append(stats.avg_cycles_saved)
        out["speedup"][capacity] = sum(speedups) / len(speedups)
        out["cycles_saved"][capacity] = sum(saved) / len(saved)
    return out


def wide_frontend_comparison(
    workloads: tuple[str, ...] = ("bfs", "mcf", "xz"),
    scale: str = "tiny",
) -> dict:
    """8-wide + TEA vs a true 16-wide core (paper §IV-H).

    The paper: 16-wide costs ~10% area for 2.8% performance because the
    predictor still delivers one taken branch per cycle; the TEA thread
    is the better use of the transistors.
    """
    wide_core = CoreConfig(
        fetch_width=16,
        rename_width=16,
        issue_width=16,
        retire_width=32,
        alu_ports=12,
        load_ports=8,
        store_ports=4,
        fp_ports=4,
    )
    base_ipcs, wide_ipcs, tea_ipcs = [], [], []
    for name in workloads:
        base_ipcs.append(_run(name, scale, SimConfig()).ipc)
        wide_ipcs.append(_run(name, scale, SimConfig(core=wide_core)).ipc)
        tea_ipcs.append(_run(name, scale, SimConfig(tea=TeaConfig())).ipc)
    return {
        "wide_pct": speedup_percent(geomean(wide_ipcs), geomean(base_ipcs)),
        "tea_pct": speedup_percent(geomean(tea_ipcs), geomean(base_ipcs)),
        "paper_wide_pct": 2.8,
    }


def prior_work_comparison(
    workloads: tuple[str, ...] = ("bfs", "mcf", "xz"),
    scale: str = "tiny",
) -> dict:
    """Three generations of H2P mitigation side by side (paper §II).

    CRISP/IBDA (criticality scheduling) < Branch Runahead (fetch-time
    overrides from a chain engine) < the TEA thread (early flushes) —
    each relaxes the previous one's constraint.
    """
    from .runner import make_config

    ipcs: dict[str, list[float]] = {m: [] for m in ("baseline", "crisp", "runahead", "tea")}
    for name in workloads:
        for mode in ipcs:
            ipcs[mode].append(_run(name, scale, make_config(mode)).ipc)
    base = geomean(ipcs["baseline"])
    return {
        mode: speedup_percent(geomean(values), base)
        for mode, values in ipcs.items()
        if mode != "baseline"
    }
