"""Kernel throughput benchmark: simulated cycles/sec and uops/sec.

The cycle kernel (:meth:`Pipeline.step` and everything it calls) is the
throughput ceiling for every figure campaign the harness fans out; this
module times it on a pinned set of fig5 workload x mode cells and
records the trajectory in ``BENCH_pipeline.json`` so perf regressions
are visible PR over PR.

Methodology
-----------
* Workload construction and config building happen **outside** the
  timed region; only :meth:`Pipeline.run` is timed.
* Each cell runs ``repeat`` times and reports the **best** wall time
  (interference only ever slows a run down, so min is the estimator
  closest to the kernel's true cost).
* A small pure-Python calibration loop is timed on the same host and
  its score stored alongside the results.  Comparisons between two
  reports (``compare_reports``) use *calibrated* throughput —
  cycles/sec divided by the host's calibration score — so a committed
  baseline number is meaningful on a CI runner of a different speed.
* Functional validation still runs after every timed cell: a kernel
  that got faster by computing wrong answers must never publish a
  throughput number.
"""

from __future__ import annotations

import json
import platform
import sys
import time

from ..core import Pipeline
from ..workloads import make_workload
from .runner import make_config

#: The pinned benchmark matrix: fig5's headline comparison (baseline vs
#: TEA on on-core resources) on three control-flow-diverse workloads.
#: Pinned so BENCH_pipeline.json numbers are comparable PR over PR.
PINNED_RUNS: tuple[tuple[str, str], ...] = (
    ("bfs", "baseline"),
    ("bfs", "tea"),
    ("mcf", "baseline"),
    ("mcf", "tea"),
    ("xz", "baseline"),
    ("xz", "tea"),
)

SCHEMA_VERSION = 1


def calibrate(iterations: int = 2_000_000) -> float:
    """Score this host: millions of trivial loop iterations per second.

    The loop shape (attribute-free arithmetic in a tight Python loop)
    deliberately resembles the simulator's hot path more than, say, a
    numpy kernel would.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(iterations):
        acc += i & 7
    dt = time.perf_counter() - t0
    # ``acc`` is consumed so the loop cannot be optimised away.
    assert acc >= 0
    return iterations / dt / 1e6


def bench_cell(
    workload_name: str,
    mode: str,
    scale: str = "tiny",
    repeat: int = 3,
) -> dict:
    """Time one (workload, mode) cell; returns a JSON-safe record."""
    workload = make_workload(workload_name, scale)
    config = make_config(mode)
    best = None
    stats = None
    validated = None
    for _ in range(max(1, repeat)):
        pipeline = Pipeline(workload.program, workload.fresh_memory(), config)
        t0 = time.perf_counter()
        pipeline.run(max_cycles=30_000_000)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
            stats = pipeline.stats
        if pipeline.halted and workload.validate is not None:
            validated = workload.validate(pipeline)
            if not validated:
                raise RuntimeError(
                    f"bench cell {workload_name}/{mode} failed functional "
                    f"validation -- refusing to record a throughput number"
                )
    uops = stats.fetched_uops + stats.tea_fetched_uops
    return {
        "workload": workload_name,
        "mode": mode,
        "scale": scale,
        "wall_s": round(best, 6),
        "cycles": stats.cycles,
        "instructions": stats.retired_instructions,
        "uops": uops,
        "cycles_per_sec": round(stats.cycles / best, 1),
        "uops_per_sec": round(uops / best, 1),
        "ipc": round(stats.ipc, 4),
        "validated": validated,
    }


def _geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def run_bench(
    runs: tuple[tuple[str, str], ...] = PINNED_RUNS,
    scale: str = "tiny",
    repeat: int = 3,
    progress=None,
) -> dict:
    """Run the benchmark matrix; returns the full report dict."""
    calibration = calibrate()
    cells = []
    for workload_name, mode in runs:
        cell = bench_cell(workload_name, mode, scale, repeat)
        cells.append(cell)
        if progress is not None:
            progress(cell)
    geomean_cps = _geomean([c["cycles_per_sec"] for c in cells])
    geomean_ups = _geomean([c["uops_per_sec"] for c in cells])
    functional = functional_bench(runs, scale, repeat, cells)
    sampling = sampling_bench(runs, scale, repeat)
    return {
        "schema": SCHEMA_VERSION,
        "bench": "pipeline",
        "scale": scale,
        "repeat": repeat,
        "host": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "platform": platform.platform(),
            "calibration_mops": round(calibration, 2),
        },
        "runs": cells,
        "functional": functional,
        "sampling": sampling,
        "geomean_cycles_per_sec": round(geomean_cps, 1),
        "geomean_uops_per_sec": round(geomean_ups, 1),
        "calibrated_cycles_per_sec": round(geomean_cps / calibration, 1),
    }


def functional_bench(
    runs: tuple[tuple[str, str], ...] = PINNED_RUNS,
    scale: str = "tiny",
    repeat: int = 3,
    detailed_cells: list[dict] | None = None,
) -> dict:
    """Time the functional fast-forward engine against the references.

    For every distinct workload in ``runs`` this times (best-of-repeat,
    same estimator as the detailed cells):

    * the closure-compiled :class:`~repro.sampling.functional.\
FunctionalEngine` **with warmup tracking on** — the exact
      configuration the sampled-simulation fast-forward uses, so the
      recorded rate is the honest one, not a stripped-down showpiece;
    * the golden interpreter (``repro.isa.interpreter.run_program``) —
      the pre-bound-dispatch hot loop this PR optimised.

    Speedups versus the detailed kernel divide by the **fastest**
    detailed cell for the same workload (instructions/sec across the
    modes in ``detailed_cells``), i.e. the conservative lower bound.
    Engine compilation happens outside the timed region, mirroring how
    the detailed cells exclude Pipeline construction.  The sampling
    import is function-level: harness sits below sampling in the
    architecture layering.
    """
    from ..isa.interpreter import run_program
    from ..sampling.functional import functional_rate

    max_steps = 50_000_000
    detailed_rates: dict[str, float] = {}
    for cell in detailed_cells or []:
        rate = cell["instructions"] / cell["wall_s"] if cell["wall_s"] else 0.0
        name = cell["workload"]
        detailed_rates[name] = max(detailed_rates.get(name, 0.0), rate)

    rows = []
    for name in dict.fromkeys(workload for workload, _ in runs):
        workload = make_workload(name, scale)
        executed = 0
        best_func = None
        for _ in range(max(1, repeat)):
            count, wall = functional_rate(
                workload.program, workload.fresh_memory(), max_steps
            )
            executed = count
            if best_func is None or wall < best_func:
                best_func = wall
        best_interp = None
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            result = run_program(
                workload.program, workload.fresh_memory(), max_steps
            )
            wall = time.perf_counter() - t0
            if result.instructions_executed != executed:
                raise RuntimeError(
                    f"functional/interpreter divergence on {name}: "
                    f"{executed} vs {result.instructions_executed} "
                    "instructions -- refusing to record a rate"
                )
            if best_interp is None or wall < best_interp:
                best_interp = wall
        func_rate = executed / best_func if best_func else 0.0
        interp_rate = executed / best_interp if best_interp else 0.0
        detailed = detailed_rates.get(name)
        rows.append(
            {
                "workload": name,
                "scale": scale,
                "instructions": executed,
                "functional_wall_s": round(best_func, 6),
                "functional_instr_per_sec": round(func_rate, 1),
                "interpreter_wall_s": round(best_interp, 6),
                "interpreter_instr_per_sec": round(interp_rate, 1),
                "detailed_instr_per_sec": (
                    round(detailed, 1) if detailed else None
                ),
                "speedup_vs_detailed": (
                    round(func_rate / detailed, 1) if detailed else None
                ),
                "speedup_vs_interpreter": (
                    round(func_rate / interp_rate, 1) if interp_rate else None
                ),
            }
        )
    speedups = [
        r["speedup_vs_detailed"] for r in rows if r["speedup_vs_detailed"]
    ]
    return {
        "rows": rows,
        "geomean_functional_instr_per_sec": round(
            _geomean([r["functional_instr_per_sec"] for r in rows]), 1
        ),
        "geomean_interpreter_instr_per_sec": round(
            _geomean([r["interpreter_instr_per_sec"] for r in rows]), 1
        ),
        "geomean_speedup_vs_detailed": (
            round(_geomean(speedups), 1) if speedups else None
        ),
        "methodology": (
            "best-of-repeat wall time; engine/pipeline construction "
            "excluded; functional engine timed with warmup tracking ON "
            "(the sampling configuration); speedup divides by the "
            "fastest detailed mode per workload (conservative)"
        ),
    }


def sampling_bench(
    runs: tuple[tuple[str, str], ...] = PINNED_RUNS,
    scale: str = "tiny",
    repeat: int = 3,
) -> dict:
    """Time the sampled-simulation functional phase, one pass vs two.

    The window scheduler used to run one functional pass to count
    instructions and a second to capture checkpoints;
    :func:`~repro.sampling.checkpoint.run_and_capture` folds both into
    a single pass with a bounded snapshot reservoir.  This times both
    shapes on the pinned workloads with the scheduler's default window
    plan and records the honest speedup — after asserting the two
    produce identical checkpoints (a faster capture that captures
    something else must never publish a number).
    """
    from ..sampling.checkpoint import capture_checkpoints, run_and_capture
    from ..sampling.functional import FunctionalEngine
    from ..sampling.windows import (
        DEFAULT_MEASURE,
        DEFAULT_WARMUP,
        DEFAULT_WINDOWS,
        FASTFORWARD_MAX_STEPS,
        place_windows,
    )

    def plan(total: int) -> list[int]:
        starts = place_windows(total, DEFAULT_WINDOWS, DEFAULT_MEASURE)
        return sorted({max(0, s - DEFAULT_WARMUP) for s in starts})

    rows = []
    for name in dict.fromkeys(workload for workload, _ in runs):
        best_one = best_two = None
        one_pass = two_pass = None
        total = 0
        for _ in range(max(1, repeat)):
            workload = make_workload(name, scale)
            t0 = time.perf_counter()
            total, one_pass = run_and_capture(
                workload, plan, workload_name=name, scale=scale,
                max_steps=FASTFORWARD_MAX_STEPS,
            )
            wall = time.perf_counter() - t0
            if best_one is None or wall < best_one:
                best_one = wall
        for _ in range(max(1, repeat)):
            workload = make_workload(name, scale)
            t0 = time.perf_counter()
            counted = FunctionalEngine(
                workload.program, workload.fresh_memory()
            ).run_to_halt(FASTFORWARD_MAX_STEPS)
            two_pass = capture_checkpoints(
                make_workload(name, scale), plan(counted),
                workload_name=name, scale=scale,
            )
            wall = time.perf_counter() - t0
            if best_two is None or wall < best_two:
                best_two = wall
        if one_pass != two_pass:
            raise RuntimeError(
                f"one-pass/two-pass checkpoint divergence on {name} "
                "-- refusing to record a speedup"
            )
        rows.append(
            {
                "workload": name,
                "scale": scale,
                "instructions": total,
                "checkpoints": len(one_pass),
                "one_pass_wall_s": round(best_one, 6),
                "two_pass_wall_s": round(best_two, 6),
                "speedup": round(best_two / best_one, 2) if best_one else None,
            }
        )
    return {
        "rows": rows,
        "geomean_speedup": round(
            _geomean([r["speedup"] for r in rows if r["speedup"]]), 2
        ),
        "methodology": (
            "best-of-repeat wall time; default window plan "
            f"({_bench_plan_note()}); one-pass run_and_capture vs "
            "count-then-capture, checkpoints asserted identical"
        ),
    }


def _bench_plan_note() -> str:
    from ..sampling.windows import (
        DEFAULT_MEASURE,
        DEFAULT_WARMUP,
        DEFAULT_WINDOWS,
    )

    return (
        f"{DEFAULT_WINDOWS} windows, warmup {DEFAULT_WARMUP}, "
        f"measure {DEFAULT_MEASURE}"
    )


def compare_reports(current: dict, baseline: dict) -> dict:
    """Compare two bench reports on *calibrated* throughput.

    Returns ``{"speedup": float, "current": ..., "baseline": ...}``
    where speedup > 1 means the current kernel is faster per unit of
    host speed.  Raw cycles/sec is also included for same-host runs.
    """
    cur = current.get("calibrated_cycles_per_sec", 0.0)
    base = baseline.get("calibrated_cycles_per_sec", 0.0)
    raw_cur = current.get("geomean_cycles_per_sec", 0.0)
    raw_base = baseline.get("geomean_cycles_per_sec", 0.0)
    return {
        "speedup": cur / base if base else float("inf"),
        "raw_speedup": raw_cur / raw_base if raw_base else float("inf"),
        "current": cur,
        "baseline": base,
        "current_raw": raw_cur,
        "baseline_raw": raw_base,
    }


def load_report(path: str) -> dict:
    """Load a benchmark report, rejecting files from other benches."""
    with open(path) as fh:
        report = json.load(fh)
    if report.get("bench") != "pipeline":
        raise ValueError(f"{path} is not a pipeline bench report")
    return report


def write_report(report: dict, path: str) -> None:
    """Write a benchmark report as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
