"""Simulation runner: named machine configurations + result records.

The *modes* map one-to-one to the machine configurations evaluated in
the paper:

==================  ====================================================
mode                paper artifact
==================  ====================================================
baseline            the aggressive 8-wide OoO core (Table I)
tea                 TEA thread, on-core resources (Fig. 5)
tea_dedicated       TEA thread on a dedicated execution engine (Fig. 9)
tea_prefetch_only   TEA without early resolution — §V-B's 1.2% check
tea_only_loops      Fig. 10 "only loops" ablation
tea_no_masks        Fig. 10 "no masks" ablation
tea_no_mem          Fig. 10 "no mem" ablation
tea_no_features     Fig. 10 "no features" point (39% coverage)
runahead            the Branch Runahead comparison baseline (Fig. 8)
crisp               CRISP/IBDA critical-slice prioritization (§II)
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core import Pipeline, SimConfig, SimStats
from ..isa import run_program
from ..obs import Observation
from ..runahead import RunaheadConfig
from ..tea import TeaConfig, tea_ablation
from ..workloads import Workload, make_workload


class ValidationError(RuntimeError):
    """A workload's functional validator rejected the committed state.

    Carries everything needed to debug the failure from a campaign
    journal: the workload, the machine mode, and — when the sequential
    reference interpreter can reproduce the expected state — the first
    divergent architectural register or memory word.

    ``fault_context`` is the active
    :class:`~repro.verify.faults.FaultInjector` journal when the run
    had a fault plan (``None`` otherwise), so campaign journals
    attribute the corruption to the injected fault instead of a real
    model bug.  Both payloads ride on ``diagnostics``, which the
    executor ships across the worker boundary.
    """

    def __init__(
        self,
        workload: str,
        mode: str,
        divergence: dict | None,
        fault_context: dict | None = None,
    ):
        self.workload = workload
        self.mode = mode
        self.divergence = divergence
        self.fault_context = fault_context
        self.diagnostics: dict = {}
        if divergence is not None:
            self.diagnostics["divergence"] = divergence
        if fault_context is not None:
            self.diagnostics["fault_context"] = fault_context
        detail = ""
        if divergence is not None:
            where = (
                f"r{divergence['index']}"
                if divergence["kind"] == "register"
                else f"mem[{divergence['index']:#x}]"
            )
            detail = (
                f"; first divergence at {where}: "
                f"expected {divergence['expected']!r}, "
                f"got {divergence['got']!r}"
            )
        super().__init__(
            f"functional validation FAILED: {workload} under {mode}{detail}"
        )


def _first_divergence(workload: Workload, pipeline: Pipeline) -> dict | None:
    """Diff committed state against the golden interpreter.

    Returns ``{"kind": "register"|"memory", "index", "expected", "got"}``
    for the first mismatch, or ``None`` when the reference itself cannot
    run (the validator's verdict still stands either way).
    """
    try:
        ref = run_program(workload.program, workload.fresh_memory())
    except Exception:
        return None
    for idx, (expected, got) in enumerate(
        zip(ref.registers, pipeline.committed_regs)
    ):
        if expected != got:
            return {
                "kind": "register",
                "index": idx,
                "expected": expected,
                "got": got,
            }
    ref_mem = ref.memory.snapshot()
    got_mem = pipeline.memory.snapshot()
    for addr in sorted(set(ref_mem) | set(got_mem)):
        expected, got = ref_mem.get(addr, 0), got_mem.get(addr, 0)
        if expected != got:
            return {
                "kind": "memory",
                "index": addr,
                "expected": expected,
                "got": got,
            }
    return None


def make_config(mode: str) -> SimConfig:
    """Build the :class:`SimConfig` for a named machine mode."""
    if mode == "baseline":
        return SimConfig()
    if mode == "tea":
        return SimConfig(tea=TeaConfig())
    if mode == "tea_dedicated":
        return SimConfig(tea=replace(TeaConfig(), dedicated_engine=True))
    if mode == "tea_prefetch_only":
        return SimConfig(tea=replace(TeaConfig(), early_resolution=False))
    if mode == "tea_only_loops":
        return SimConfig(tea=tea_ablation("only_loops"))
    if mode == "tea_no_masks":
        return SimConfig(tea=tea_ablation("no_masks"))
    if mode == "tea_no_mem":
        return SimConfig(tea=tea_ablation("no_mem"))
    if mode == "tea_no_features":
        return SimConfig(tea=tea_ablation("no_features"))
    if mode == "runahead":
        return SimConfig(runahead=RunaheadConfig())
    if mode == "crisp":
        from ..crisp import CrispConfig

        return SimConfig(crisp=CrispConfig())
    raise ValueError(f"unknown mode {mode!r}")


MODES = (
    "baseline",
    "tea",
    "tea_dedicated",
    "tea_prefetch_only",
    "tea_only_loops",
    "tea_no_masks",
    "tea_no_mem",
    "tea_no_features",
    "runahead",
    "crisp",
)


@dataclass
class RunResult:
    """One (workload, mode) simulation outcome.

    ``failure`` is ``None`` for a successful run; a failed campaign cell
    is represented by a placeholder result with zeroed stats and
    ``failure`` set to the failure kind (``"fatal"``, ``"retryable"``,
    ``"timeout"``), so figures can mark the cell instead of aborting.
    """

    workload: str
    mode: str
    stats: SimStats
    validated: bool
    halted: bool
    observation: Observation | None = None
    failure: str | None = None
    error: str | None = None
    #: The pipeline's :class:`~repro.obs.profiler.PipelineProfiler`
    #: when the run was profiled (``profile=True``), else ``None``.
    profiler: object | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def run_workload(
    workload: Workload | str,
    mode: str = "baseline",
    scale: str = "bench",
    max_cycles: int = 30_000_000,
    observe: Observation | bool | None = None,
    check_invariants: int = 0,
    fault_plan: object | None = None,
    profile: bool = False,
    config: SimConfig | None = None,
) -> RunResult:
    """Simulate one workload under one machine mode, to completion.

    Functional validation runs whenever the workload halted and defines
    a validator; a validation failure raises — a simulator that computes
    wrong answers must never silently produce performance numbers.

    ``observe`` attaches the :mod:`repro.obs` telemetry layer: pass an
    :class:`~repro.obs.Observation` to configure it, or ``True`` for the
    defaults; the attached hub comes back on ``RunResult.observation``.
    Observation is off by default and costs nothing when off.

    ``check_invariants=N`` audits the machine's structural invariants
    every N cycles (:mod:`repro.verify`); ``fault_plan`` attaches a
    :class:`~repro.verify.faults.FaultPlan` for deterministic fault
    injection.  Both default to off and leave the simulation
    cycle-identical when off.

    ``profile=True`` enables the per-stage wall-clock self-profiler
    (:mod:`repro.obs.profiler`); the profiler comes back on
    ``RunResult.profiler``.  Profiling never perturbs simulated state.

    ``config`` replaces the mode-derived :class:`SimConfig` (e.g. a TEA
    config carrying a static branch mask); ``mode`` is still recorded
    on the result for reporting.
    """
    if isinstance(workload, str):
        workload = make_workload(workload, scale)
    if config is None:
        config = make_config(mode)
    if check_invariants or fault_plan is not None:
        config = replace(
            config, check_invariants=check_invariants, fault_plan=fault_plan
        )
    if profile:
        config = replace(config, profile=True)
    pipeline = Pipeline(workload.program, workload.fresh_memory(), config)
    observation: Observation | None = None
    if observe is True:
        observation = Observation()
    elif observe:
        observation = observe
    if observation is not None:
        observation.attach(pipeline)
    stats = pipeline.run(max_cycles=max_cycles)
    validated = False
    if pipeline.halted and workload.validate is not None:
        validated = workload.validate(pipeline)
        if not validated:
            from ..verify.diagnostics import fault_context

            raise ValidationError(
                workload.name,
                mode,
                _first_divergence(workload, pipeline),
                fault_context=fault_context(pipeline),
            )
    return RunResult(
        workload=workload.name,
        mode=mode,
        stats=stats,
        validated=validated,
        halted=pipeline.halted,
        observation=observation,
        profiler=pipeline.profiler,
    )
