"""Experiment harness: runner, executor, per-figure experiments, reporting."""

from .bench import (
    PINNED_RUNS,
    bench_cell,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)
from .executor import (
    CampaignExecutor,
    RunFailure,
    RunOutcome,
    RunSpec,
    load_checkpoint,
    matrix_specs,
    summarize_outcomes,
)
from .experiments import FIGURE_MODES, ExperimentSuite
from .reporting import format_table, geomean, speedup_percent
from .runner import (
    MODES,
    RunResult,
    ValidationError,
    make_config,
    run_workload,
)
from .sweeps import (
    block_cache_sweep,
    ftq_sweep,
    h2p_marking_sweep,
    prior_work_comparison,
    wide_frontend_comparison,
)

__all__ = [
    "CampaignExecutor",
    "PINNED_RUNS",
    "bench_cell",
    "compare_reports",
    "load_report",
    "run_bench",
    "write_report",
    "ExperimentSuite",
    "FIGURE_MODES",
    "RunFailure",
    "RunOutcome",
    "RunSpec",
    "ValidationError",
    "block_cache_sweep",
    "ftq_sweep",
    "h2p_marking_sweep",
    "load_checkpoint",
    "matrix_specs",
    "prior_work_comparison",
    "summarize_outcomes",
    "wide_frontend_comparison",
    "format_table",
    "geomean",
    "speedup_percent",
    "MODES",
    "RunResult",
    "make_config",
    "run_workload",
]
