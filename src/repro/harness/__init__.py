"""Experiment harness: runner, per-figure experiments, reporting."""

from .experiments import ExperimentSuite
from .reporting import format_table, geomean, speedup_percent
from .runner import MODES, RunResult, make_config, run_workload
from .sweeps import (
    block_cache_sweep,
    ftq_sweep,
    h2p_marking_sweep,
    prior_work_comparison,
    wide_frontend_comparison,
)

__all__ = [
    "ExperimentSuite",
    "block_cache_sweep",
    "ftq_sweep",
    "h2p_marking_sweep",
    "prior_work_comparison",
    "wide_frontend_comparison",
    "format_table",
    "geomean",
    "speedup_percent",
    "MODES",
    "RunResult",
    "make_config",
    "run_workload",
]
