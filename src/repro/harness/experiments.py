"""Per-figure/table experiment definitions (paper §V).

The :class:`ExperimentSuite` runs (workload, mode) simulations lazily
and caches results, so the figures share runs — Fig. 5, Fig. 7, and
Table III all reuse the same ``tea`` runs, exactly as one simulation
campaign would.

Each ``fig*``/``table*`` method returns a plain dict of series (for
tests and downstream tooling) and a ``render_*`` helper produces the
paper-style text table.
"""

from __future__ import annotations

from ..core import SimStats, SimulationError
from ..workloads import (
    complex_control_flow_names,
    simple_control_flow_names,
    workload_names,
)
from .reporting import format_table, geomean, speedup_percent
from .runner import RunResult, ValidationError, run_workload

#: Modes each figure needs, for executor-driven matrix pre-runs.
FIGURE_MODES = {
    "fig5": ("baseline", "tea"),
    "fig6": ("baseline",),
    "fig7": ("tea",),
    "fig8": ("baseline", "tea", "runahead"),
    "fig9": ("baseline", "tea", "tea_dedicated"),
    "fig10": ("tea", "tea_only_loops", "tea_no_masks", "tea_no_mem",
              "tea_no_features"),
    "table3": ("baseline", "tea"),
}

#: Paper-reported numbers for EXPERIMENTS.md comparisons.
PAPER_GEOMEAN_TEA = 10.1
PAPER_GEOMEAN_RUNAHEAD = 7.3
PAPER_GEOMEAN_DEDICATED = 12.3
PAPER_TEA_ACCURACY = 99.3
PAPER_TEA_COVERAGE = 76.0
PAPER_NO_FEATURES_COVERAGE = 39.0
PAPER_FOOTPRINT_INCREASE = 31.9
PAPER_PREFETCH_ONLY_GAIN = 1.2


class ExperimentSuite:
    """Lazily-cached simulation campaign over all workloads/modes.

    Fault tolerance: a run that dies with a :class:`SimulationError` or
    :class:`ValidationError` is cached as a *failed cell* (zeroed stats,
    ``failure`` kind set) instead of aborting the whole campaign;
    figures mark those cells and compute aggregates over the surviving
    workloads.  An optional :class:`~repro.harness.executor
    .CampaignExecutor` fans matrix pre-runs (:meth:`run_matrix`) out
    over worker processes with timeouts, retry, and checkpoint/resume.
    """

    def __init__(
        self,
        scale: str = "bench",
        workloads: tuple[str, ...] | None = None,
        executor=None,
    ):
        self.scale = scale
        self.workloads = tuple(workloads) if workloads else workload_names()
        self.executor = executor
        self._cache: dict[tuple[str, str], RunResult] = {}

    def result(self, workload: str, mode: str) -> RunResult:
        key = (workload, mode)
        if key not in self._cache:
            try:
                self._cache[key] = run_workload(workload, mode, self.scale)
            except (SimulationError, ValidationError) as exc:
                self._cache[key] = RunResult(
                    workload=workload,
                    mode=mode,
                    stats=SimStats(),
                    validated=False,
                    halted=False,
                    failure="fatal",
                    error=str(exc),
                )
        return self._cache[key]

    # -- executor integration ------------------------------------------
    def prime(self, outcomes) -> None:
        """Preload the cache from executor :class:`RunOutcome` records
        (failed cells included, as marked placeholder results)."""
        for outcome in outcomes:
            key = (outcome.spec.workload, outcome.spec.mode)
            self._cache[key] = outcome.run_result()

    def run_matrix(
        self,
        modes,
        checkpoint=None,
        resume: bool = False,
    ):
        """Execute workloads × modes through the attached executor (or
        inline when none is attached) and prime the cache."""
        from .executor import CampaignExecutor, matrix_specs

        executor = self.executor or CampaignExecutor(jobs=0)
        specs = matrix_specs(self.workloads, modes, scale=self.scale)
        outcomes = executor.run(specs, checkpoint=checkpoint, resume=resume)
        self.prime(outcomes)
        return outcomes

    # -- failure bookkeeping -------------------------------------------
    def failures(self) -> dict[str, str]:
        """``{"workload/mode": failure_kind}`` for every failed cell."""
        return {
            f"{w}/{m}": result.failure
            for (w, m), result in sorted(self._cache.items())
            if result.failure is not None
        }

    def _ok(self, name: str, *modes: str) -> bool:
        return all(self.result(name, mode).ok for mode in modes)

    def _complete(self, names, *modes: str) -> list[str]:
        """Workloads whose runs succeeded under every listed mode."""
        return [n for n in names if self._ok(n, *modes)]

    def _cell(self, value, name: str, *modes: str):
        """``value`` when every involved run succeeded, else a marker
        naming the failure kind (for rendered tables)."""
        for mode in modes:
            result = self.result(name, mode)
            if not result.ok:
                return f"FAILED({result.failure})"
        return value

    def _speedups(self, mode: str) -> dict[str, float | None]:
        """Per-workload speedup vs baseline; ``None`` for failed cells."""
        out: dict[str, float | None] = {}
        for name in self.workloads:
            if not self._ok(name, "baseline", mode):
                out[name] = None
                continue
            base = self.result(name, "baseline").ipc
            out[name] = speedup_percent(self.result(name, mode).ipc, base)
        return out

    def _gm_speedup(self, mode: str, names) -> float:
        """Geomean speedup over the workloads where both runs are ok."""
        names = self._complete(names, "baseline", mode)
        if not names:
            return 0.0
        return speedup_percent(
            geomean([self.result(n, mode).ipc for n in names]),
            geomean([self.result(n, "baseline").ipc for n in names]),
        )

    # ==================================================================
    # Fig. 5 — TEA speedup per benchmark (on-core)
    # ==================================================================
    def fig5(self) -> dict:
        speedups = self._speedups("tea")
        return {
            "speedup_pct": speedups,
            "geomean_pct": self._gm_speedup("tea", self.workloads),
            "paper_geomean_pct": PAPER_GEOMEAN_TEA,
            "failures": self.failures(),
        }

    def render_fig5(self) -> str:
        data = self.fig5()
        rows = [
            [n, self._cell(data["speedup_pct"][n], n, "baseline", "tea")]
            for n in self.workloads
        ]
        rows.append(["geomean", data["geomean_pct"]])
        return format_table(
            ["benchmark", "TEA speedup %"],
            rows,
            title="Fig. 5 — performance benefit of the TEA thread (on-core)",
        )

    # ==================================================================
    # Fig. 6 — baseline MPKI per benchmark
    # ==================================================================
    def fig6(self) -> dict:
        mpki = {
            n: (self.result(n, "baseline").stats.mpki
                if self._ok(n, "baseline") else None)
            for n in self.workloads
        }
        return {"mpki": mpki, "failures": self.failures()}

    def render_fig6(self) -> str:
        data = self.fig6()
        rows = [
            [n, self._cell(data["mpki"][n], n, "baseline")]
            for n in self.workloads
        ]
        return format_table(
            ["benchmark", "MPKI"],
            rows,
            title="Fig. 6 — direction+target mispredictions per kilo-instruction",
        )

    # ==================================================================
    # Fig. 7 — misprediction coverage breakdown under TEA
    # ==================================================================
    def fig7(self) -> dict:
        breakdown = {}
        for name in self._complete(self.workloads, "tea"):
            stats = self.result(name, "tea").stats
            total = (
                stats.covered_timely
                + stats.covered_late
                + stats.incorrect_precomputations
                + stats.uncovered_mispredicts
            )
            total = max(total, 1)
            breakdown[name] = {
                "covered_timely": 100.0 * stats.covered_timely / total,
                "covered_late": 100.0 * stats.covered_late / total,
                "incorrect": 100.0 * stats.incorrect_precomputations / total,
                "uncovered": 100.0 * stats.uncovered_mispredicts / total,
                "coverage": 100.0 * stats.coverage,
            }
        mean_cov = (
            sum(b["coverage"] for b in breakdown.values()) / len(breakdown)
            if breakdown
            else 0.0
        )
        return {
            "breakdown": breakdown,
            "mean_coverage_pct": mean_cov,
            "paper_coverage_pct": PAPER_TEA_COVERAGE,
            "failures": self.failures(),
        }

    def render_fig7(self) -> str:
        data = self.fig7()
        rows = []
        for n in self.workloads:
            b = data["breakdown"].get(n)
            if b is None:
                marker = self._cell(0.0, n, "tea")
                rows.append([n, marker, marker, marker, marker])
                continue
            rows.append(
                [
                    n,
                    b["covered_timely"],
                    b["covered_late"],
                    b["incorrect"],
                    b["uncovered"],
                ]
            )
        return format_table(
            ["benchmark", "timely %", "late %", "incorrect %", "uncovered %"],
            rows,
            title="Fig. 7 — breakdown of branch mispredictions covered by TEA",
        )

    # ==================================================================
    # Fig. 8 — TEA vs Branch Runahead, simple vs complex control flow
    # ==================================================================
    def fig8(self) -> dict:
        tea = self._speedups("tea")
        br = self._speedups("runahead")
        simple = [n for n in self.workloads if n in simple_control_flow_names()]
        complex_ = [n for n in self.workloads if n in complex_control_flow_names()]

        return {
            "tea_pct": tea,
            "runahead_pct": br,
            "simple_names": tuple(simple),
            "complex_names": tuple(complex_),
            "tea_geomean_pct": self._gm_speedup("tea", self.workloads),
            "runahead_geomean_pct": self._gm_speedup("runahead", self.workloads),
            "tea_simple_pct": self._gm_speedup("tea", simple),
            "runahead_simple_pct": self._gm_speedup("runahead", simple),
            "tea_complex_pct": self._gm_speedup("tea", complex_),
            "runahead_complex_pct": self._gm_speedup("runahead", complex_),
            "paper_tea_pct": PAPER_GEOMEAN_TEA,
            "paper_runahead_pct": PAPER_GEOMEAN_RUNAHEAD,
            "failures": self.failures(),
        }

    def render_fig8(self) -> str:
        data = self.fig8()
        rows = []
        for name in self.workloads:
            category = "simple" if name in data["simple_names"] else "complex"
            rows.append(
                [
                    name,
                    category,
                    self._cell(data["tea_pct"][name], name, "baseline", "tea"),
                    self._cell(
                        data["runahead_pct"][name], name, "baseline", "runahead"
                    ),
                ]
            )
        rows.append(["geomean(simple)", "", data["tea_simple_pct"], data["runahead_simple_pct"]])
        rows.append(
            ["geomean(complex)", "", data["tea_complex_pct"], data["runahead_complex_pct"]]
        )
        rows.append(["geomean(all)", "", data["tea_geomean_pct"], data["runahead_geomean_pct"]])
        return format_table(
            ["benchmark", "cfg", "TEA %", "Branch Runahead %"],
            rows,
            title="Fig. 8 — comparison against Branch Runahead",
        )

    # ==================================================================
    # Fig. 9 — TEA with a dedicated execution engine
    # ==================================================================
    def fig9(self) -> dict:
        dedicated = self._speedups("tea_dedicated")
        oncore = self._speedups("tea")
        return {
            "dedicated_pct": dedicated,
            "oncore_pct": oncore,
            "dedicated_geomean_pct": self._gm_speedup(
                "tea_dedicated", self.workloads
            ),
            "paper_dedicated_pct": PAPER_GEOMEAN_DEDICATED,
            "failures": self.failures(),
        }

    def render_fig9(self) -> str:
        data = self.fig9()
        rows = [
            [
                n,
                self._cell(data["oncore_pct"][n], n, "baseline", "tea"),
                self._cell(
                    data["dedicated_pct"][n], n, "baseline", "tea_dedicated"
                ),
            ]
            for n in self.workloads
        ]
        rows.append(["geomean", "", data["dedicated_geomean_pct"]])
        return format_table(
            ["benchmark", "on-core %", "dedicated engine %"],
            rows,
            title="Fig. 9 — TEA thread on a separate execution engine",
        )

    # ==================================================================
    # Fig. 10 — thread-construction feature ablations
    # ==================================================================
    ABLATION_MODES = (
        ("tea", "TEA"),
        ("tea_only_loops", "only loops"),
        ("tea_no_masks", "no masks"),
        ("tea_no_mem", "no mem"),
        ("tea_no_features", "no features"),
    )

    def fig10(self) -> dict:
        accuracy: dict[str, dict[str, float]] = {}
        coverage: dict[str, dict[str, float]] = {}
        timeliness: dict[str, dict[str, float]] = {}
        for mode, label in self.ABLATION_MODES:
            accuracy[label] = {}
            coverage[label] = {}
            timeliness[label] = {}
            for name in self._complete(self.workloads, mode):
                stats = self.result(name, mode).stats
                accuracy[label][name] = 100.0 * stats.tea_accuracy
                coverage[label][name] = 100.0 * stats.coverage
                timeliness[label][name] = stats.avg_cycles_saved

        def mean(values: dict) -> float:
            return sum(values.values()) / len(values) if values else 0.0

        means = {
            label: {
                "accuracy": mean(accuracy[label]),
                "coverage": mean(coverage[label]),
                "timeliness": mean(timeliness[label]),
            }
            for _, label in self.ABLATION_MODES
        }
        return {
            "accuracy_pct": accuracy,
            "coverage_pct": coverage,
            "cycles_saved": timeliness,
            "means": means,
            "paper_accuracy_pct": PAPER_TEA_ACCURACY,
            "paper_no_features_coverage_pct": PAPER_NO_FEATURES_COVERAGE,
            "failures": self.failures(),
        }

    def render_fig10(self) -> str:
        data = self.fig10()
        labels = [label for _, label in self.ABLATION_MODES]
        modes = {label: mode for mode, label in self.ABLATION_MODES}
        sections = []
        for metric, key in (
            ("(a) precomputation accuracy %", "accuracy_pct"),
            ("(b) misprediction coverage %", "coverage_pct"),
            ("(c) avg misprediction cycles saved", "cycles_saved"),
        ):
            rows = [
                [n]
                + [
                    self._cell(
                        data[key][label].get(n, 0.0), n, modes[label]
                    )
                    for label in labels
                ]
                for n in self.workloads
            ]
            rows.append(
                ["mean"]
                + [
                    (sum(data[key][label].values()) / len(data[key][label])
                     if data[key][label] else 0.0)
                    for label in labels
                ]
            )
            sections.append(
                format_table(
                    ["benchmark"] + labels,
                    rows,
                    title=f"Fig. 10-{metric}",
                )
            )
        return "\n\n".join(sections)

    # ==================================================================
    # Table III — dynamic instruction fetch footprint increase
    # ==================================================================
    def table3(self) -> dict:
        increase = {}
        for name in self._complete(self.workloads, "baseline", "tea"):
            base = self.result(name, "baseline").stats
            tea = self.result(name, "tea").stats
            if base.footprint_uops:
                increase[name] = 100.0 * (
                    tea.footprint_uops / base.footprint_uops - 1.0
                )
            else:
                increase[name] = 0.0
        return {
            "footprint_increase_pct": increase,
            "mean_pct": (
                sum(increase.values()) / len(increase) if increase else 0.0
            ),
            "paper_mean_pct": PAPER_FOOTPRINT_INCREASE,
            "failures": self.failures(),
        }

    def render_table3(self) -> str:
        data = self.table3()
        rows = [
            [
                n,
                self._cell(
                    data["footprint_increase_pct"].get(n, 0.0),
                    n,
                    "baseline",
                    "tea",
                ),
            ]
            for n in self.workloads
        ]
        rows.append(["mean", data["mean_pct"]])
        return format_table(
            ["benchmark", "fetch footprint increase %"],
            rows,
            title="Table III — increase in dynamic instructions fetched",
        )

    # ==================================================================
    # §V-B — prefetch-only side-effect check
    # ==================================================================
    def prefetch_only(self) -> dict:
        gains = self._speedups("tea_prefetch_only")
        return {
            "speedup_pct": gains,
            "geomean_pct": self._gm_speedup(
                "tea_prefetch_only", self.workloads
            ),
            "paper_geomean_pct": PAPER_PREFETCH_ONLY_GAIN,
            "failures": self.failures(),
        }
