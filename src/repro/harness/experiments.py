"""Per-figure/table experiment definitions (paper §V).

The :class:`ExperimentSuite` runs (workload, mode) simulations lazily
and caches results, so the figures share runs — Fig. 5, Fig. 7, and
Table III all reuse the same ``tea`` runs, exactly as one simulation
campaign would.

Each ``fig*``/``table*`` method returns a plain dict of series (for
tests and downstream tooling) and a ``render_*`` helper produces the
paper-style text table.
"""

from __future__ import annotations

from ..workloads import (
    complex_control_flow_names,
    simple_control_flow_names,
    workload_names,
)
from .reporting import format_table, geomean, speedup_percent
from .runner import RunResult, run_workload

#: Paper-reported numbers for EXPERIMENTS.md comparisons.
PAPER_GEOMEAN_TEA = 10.1
PAPER_GEOMEAN_RUNAHEAD = 7.3
PAPER_GEOMEAN_DEDICATED = 12.3
PAPER_TEA_ACCURACY = 99.3
PAPER_TEA_COVERAGE = 76.0
PAPER_NO_FEATURES_COVERAGE = 39.0
PAPER_FOOTPRINT_INCREASE = 31.9
PAPER_PREFETCH_ONLY_GAIN = 1.2


class ExperimentSuite:
    """Lazily-cached simulation campaign over all workloads/modes."""

    def __init__(self, scale: str = "bench", workloads: tuple[str, ...] | None = None):
        self.scale = scale
        self.workloads = tuple(workloads) if workloads else workload_names()
        self._cache: dict[tuple[str, str], RunResult] = {}

    def result(self, workload: str, mode: str) -> RunResult:
        key = (workload, mode)
        if key not in self._cache:
            self._cache[key] = run_workload(workload, mode, self.scale)
        return self._cache[key]

    def _speedups(self, mode: str) -> dict[str, float]:
        out = {}
        for name in self.workloads:
            base = self.result(name, "baseline").ipc
            out[name] = speedup_percent(self.result(name, mode).ipc, base)
        return out

    # ==================================================================
    # Fig. 5 — TEA speedup per benchmark (on-core)
    # ==================================================================
    def fig5(self) -> dict:
        speedups = self._speedups("tea")
        return {
            "speedup_pct": speedups,
            "geomean_pct": speedup_percent(
                geomean([self.result(n, "tea").ipc for n in self.workloads]),
                geomean([self.result(n, "baseline").ipc for n in self.workloads]),
            ),
            "paper_geomean_pct": PAPER_GEOMEAN_TEA,
        }

    def render_fig5(self) -> str:
        data = self.fig5()
        rows = [[n, data["speedup_pct"][n]] for n in self.workloads]
        rows.append(["geomean", data["geomean_pct"]])
        return format_table(
            ["benchmark", "TEA speedup %"],
            rows,
            title="Fig. 5 — performance benefit of the TEA thread (on-core)",
        )

    # ==================================================================
    # Fig. 6 — baseline MPKI per benchmark
    # ==================================================================
    def fig6(self) -> dict:
        mpki = {n: self.result(n, "baseline").stats.mpki for n in self.workloads}
        return {"mpki": mpki}

    def render_fig6(self) -> str:
        data = self.fig6()
        rows = [[n, data["mpki"][n]] for n in self.workloads]
        return format_table(
            ["benchmark", "MPKI"],
            rows,
            title="Fig. 6 — direction+target mispredictions per kilo-instruction",
        )

    # ==================================================================
    # Fig. 7 — misprediction coverage breakdown under TEA
    # ==================================================================
    def fig7(self) -> dict:
        breakdown = {}
        for name in self.workloads:
            stats = self.result(name, "tea").stats
            total = (
                stats.covered_timely
                + stats.covered_late
                + stats.incorrect_precomputations
                + stats.uncovered_mispredicts
            )
            total = max(total, 1)
            breakdown[name] = {
                "covered_timely": 100.0 * stats.covered_timely / total,
                "covered_late": 100.0 * stats.covered_late / total,
                "incorrect": 100.0 * stats.incorrect_precomputations / total,
                "uncovered": 100.0 * stats.uncovered_mispredicts / total,
                "coverage": 100.0 * stats.coverage,
            }
        mean_cov = sum(b["coverage"] for b in breakdown.values()) / len(breakdown)
        return {
            "breakdown": breakdown,
            "mean_coverage_pct": mean_cov,
            "paper_coverage_pct": PAPER_TEA_COVERAGE,
        }

    def render_fig7(self) -> str:
        data = self.fig7()
        rows = [
            [
                n,
                b["covered_timely"],
                b["covered_late"],
                b["incorrect"],
                b["uncovered"],
            ]
            for n, b in data["breakdown"].items()
        ]
        return format_table(
            ["benchmark", "timely %", "late %", "incorrect %", "uncovered %"],
            rows,
            title="Fig. 7 — breakdown of branch mispredictions covered by TEA",
        )

    # ==================================================================
    # Fig. 8 — TEA vs Branch Runahead, simple vs complex control flow
    # ==================================================================
    def fig8(self) -> dict:
        tea = self._speedups("tea")
        br = self._speedups("runahead")
        simple = [n for n in self.workloads if n in simple_control_flow_names()]
        complex_ = [n for n in self.workloads if n in complex_control_flow_names()]

        def gm(mode: str, names) -> float:
            if not names:
                return 0.0
            return speedup_percent(
                geomean([self.result(n, mode).ipc for n in names]),
                geomean([self.result(n, "baseline").ipc for n in names]),
            )

        return {
            "tea_pct": tea,
            "runahead_pct": br,
            "simple_names": tuple(simple),
            "complex_names": tuple(complex_),
            "tea_geomean_pct": gm("tea", self.workloads),
            "runahead_geomean_pct": gm("runahead", self.workloads),
            "tea_simple_pct": gm("tea", simple),
            "runahead_simple_pct": gm("runahead", simple),
            "tea_complex_pct": gm("tea", complex_),
            "runahead_complex_pct": gm("runahead", complex_),
            "paper_tea_pct": PAPER_GEOMEAN_TEA,
            "paper_runahead_pct": PAPER_GEOMEAN_RUNAHEAD,
        }

    def render_fig8(self) -> str:
        data = self.fig8()
        rows = []
        for name in self.workloads:
            category = "simple" if name in data["simple_names"] else "complex"
            rows.append(
                [name, category, data["tea_pct"][name], data["runahead_pct"][name]]
            )
        rows.append(["geomean(simple)", "", data["tea_simple_pct"], data["runahead_simple_pct"]])
        rows.append(
            ["geomean(complex)", "", data["tea_complex_pct"], data["runahead_complex_pct"]]
        )
        rows.append(["geomean(all)", "", data["tea_geomean_pct"], data["runahead_geomean_pct"]])
        return format_table(
            ["benchmark", "cfg", "TEA %", "Branch Runahead %"],
            rows,
            title="Fig. 8 — comparison against Branch Runahead",
        )

    # ==================================================================
    # Fig. 9 — TEA with a dedicated execution engine
    # ==================================================================
    def fig9(self) -> dict:
        dedicated = self._speedups("tea_dedicated")
        oncore = self._speedups("tea")
        return {
            "dedicated_pct": dedicated,
            "oncore_pct": oncore,
            "dedicated_geomean_pct": speedup_percent(
                geomean([self.result(n, "tea_dedicated").ipc for n in self.workloads]),
                geomean([self.result(n, "baseline").ipc for n in self.workloads]),
            ),
            "paper_dedicated_pct": PAPER_GEOMEAN_DEDICATED,
        }

    def render_fig9(self) -> str:
        data = self.fig9()
        rows = [
            [n, data["oncore_pct"][n], data["dedicated_pct"][n]]
            for n in self.workloads
        ]
        rows.append(["geomean", "", data["dedicated_geomean_pct"]])
        return format_table(
            ["benchmark", "on-core %", "dedicated engine %"],
            rows,
            title="Fig. 9 — TEA thread on a separate execution engine",
        )

    # ==================================================================
    # Fig. 10 — thread-construction feature ablations
    # ==================================================================
    ABLATION_MODES = (
        ("tea", "TEA"),
        ("tea_only_loops", "only loops"),
        ("tea_no_masks", "no masks"),
        ("tea_no_mem", "no mem"),
        ("tea_no_features", "no features"),
    )

    def fig10(self) -> dict:
        accuracy: dict[str, dict[str, float]] = {}
        coverage: dict[str, dict[str, float]] = {}
        timeliness: dict[str, dict[str, float]] = {}
        for mode, label in self.ABLATION_MODES:
            accuracy[label] = {}
            coverage[label] = {}
            timeliness[label] = {}
            for name in self.workloads:
                stats = self.result(name, mode).stats
                accuracy[label][name] = 100.0 * stats.tea_accuracy
                coverage[label][name] = 100.0 * stats.coverage
                timeliness[label][name] = stats.avg_cycles_saved
        means = {
            label: {
                "accuracy": sum(accuracy[label].values()) / len(self.workloads),
                "coverage": sum(coverage[label].values()) / len(self.workloads),
                "timeliness": sum(timeliness[label].values()) / len(self.workloads),
            }
            for _, label in self.ABLATION_MODES
        }
        return {
            "accuracy_pct": accuracy,
            "coverage_pct": coverage,
            "cycles_saved": timeliness,
            "means": means,
            "paper_accuracy_pct": PAPER_TEA_ACCURACY,
            "paper_no_features_coverage_pct": PAPER_NO_FEATURES_COVERAGE,
        }

    def render_fig10(self) -> str:
        data = self.fig10()
        labels = [label for _, label in self.ABLATION_MODES]
        sections = []
        for metric, key in (
            ("(a) precomputation accuracy %", "accuracy_pct"),
            ("(b) misprediction coverage %", "coverage_pct"),
            ("(c) avg misprediction cycles saved", "cycles_saved"),
        ):
            rows = [
                [n] + [data[key][label][n] for label in labels]
                for n in self.workloads
            ]
            rows.append(
                ["mean"]
                + [
                    sum(data[key][label].values()) / len(self.workloads)
                    for label in labels
                ]
            )
            sections.append(
                format_table(
                    ["benchmark"] + labels,
                    rows,
                    title=f"Fig. 10-{metric}",
                )
            )
        return "\n\n".join(sections)

    # ==================================================================
    # Table III — dynamic instruction fetch footprint increase
    # ==================================================================
    def table3(self) -> dict:
        increase = {}
        for name in self.workloads:
            base = self.result(name, "baseline").stats
            tea = self.result(name, "tea").stats
            if base.footprint_uops:
                increase[name] = 100.0 * (
                    tea.footprint_uops / base.footprint_uops - 1.0
                )
            else:
                increase[name] = 0.0
        return {
            "footprint_increase_pct": increase,
            "mean_pct": sum(increase.values()) / len(increase),
            "paper_mean_pct": PAPER_FOOTPRINT_INCREASE,
        }

    def render_table3(self) -> str:
        data = self.table3()
        rows = [[n, data["footprint_increase_pct"][n]] for n in self.workloads]
        rows.append(["mean", data["mean_pct"]])
        return format_table(
            ["benchmark", "fetch footprint increase %"],
            rows,
            title="Table III — increase in dynamic instructions fetched",
        )

    # ==================================================================
    # §V-B — prefetch-only side-effect check
    # ==================================================================
    def prefetch_only(self) -> dict:
        gains = self._speedups("tea_prefetch_only")
        gm = speedup_percent(
            geomean([self.result(n, "tea_prefetch_only").ipc for n in self.workloads]),
            geomean([self.result(n, "baseline").ipc for n in self.workloads]),
        )
        return {
            "speedup_pct": gains,
            "geomean_pct": gm,
            "paper_geomean_pct": PAPER_PREFETCH_ONLY_GAIN,
        }
