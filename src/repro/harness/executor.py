"""Fault-tolerant campaign execution: process fan-out, timeouts, retry.

The paper's evaluation is a large (workload × mode × scale) run matrix;
executing it serially in one process means a single hung or crashing
run throws away hours of completed simulation.  This module fans the
matrix out over worker processes and turns every failure into data:

* **per-run wall-clock timeouts** — a wedged simulation is terminated
  (SIGTERM to its worker) and journaled as a ``timeout`` cell;
* **bounded retry with exponential backoff** — *retryable* failures
  (worker death, OS-level errors, anything raising with a truthy
  ``retryable`` attribute) are re-attempted up to ``retries`` times;
  deterministic model failures (:class:`~repro.core.SimulationError`,
  :class:`~repro.harness.runner.ValidationError`, config errors) are
  *fatal* — retrying a deterministic simulator cannot change the
  outcome — and fail the cell immediately;
* **structured failure records** — exception class, message, traceback,
  config digest, and seed are captured per failed cell instead of a
  propagated crash;
* **checkpoint/resume** — every completed cell is appended to a JSONL
  journal as it finishes (flushed + fsynced), so an interrupted
  campaign resumes by skipping already-journaled cells.

Determinism: each run is an isolated, seeded simulation, so parallel
and serial execution produce bit-identical per-run results; only the
completion *order* differs, and results are returned in spec order.

Run-lifecycle events (``run_started`` / ``run_finished`` /
``run_failed`` / ``run_retried``) are emitted on a
:class:`~repro.obs.Observation`'s event bus when one is supplied, and
counted in its metrics registry under ``campaign.*``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import random as _random
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, fields
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path

from ..core.stats import SimStats
from ..obs.aggregate import TelemetryRelay, current_relay, set_current_relay

# Failure taxonomy (see HACKING.md).
RETRYABLE = "retryable"
FATAL = "fatal"
TIMEOUT = "timeout"

#: Exception class names treated as transient infrastructure failures.
RETRYABLE_EXCEPTION_NAMES = frozenset(
    {
        "OSError",
        "IOError",
        "EOFError",
        "BrokenPipeError",
        "ConnectionError",
        "ConnectionResetError",
        "MemoryError",
        "WorkerDied",
    }
)

#: SimStats counter fields serialized across the worker boundary.
STAT_FIELDS = tuple(
    spec.name for spec in fields(SimStats) if spec.name not in ("extra",)
)


class WorkerDied(RuntimeError):
    """A worker process exited without reporting a result."""


def classify_exception(name: str, retryable_attr: bool = False) -> str:
    """Map an exception class name to a failure kind."""
    if retryable_attr or name in RETRYABLE_EXCEPTION_NAMES:
        return RETRYABLE
    return FATAL


# ======================================================================
# Specs, failures, outcomes
# ======================================================================
@dataclass(frozen=True)
class RunSpec:
    """One cell of the campaign matrix."""

    workload: str
    mode: str
    scale: str = "bench"
    max_cycles: int = 30_000_000
    seed: int = 0
    check_invariants: int = 0   # repro.verify audit period (0 = off)
    # Deterministic microarchitectural fault injection (repro.verify):
    # when ``fault_kind`` is set the worker attaches a single-fault
    # FaultPlan seeded with ``fault_seed``.  The campaign service's
    # chaos harness uses this to run faulted cells through the normal
    # job path.
    fault_kind: str = ""
    fault_seed: int = 0

    @property
    def key(self) -> str:
        return f"{self.workload}/{self.mode}"

    def as_record(self) -> dict:
        record = {
            "workload": self.workload,
            "mode": self.mode,
            "scale": self.scale,
            "max_cycles": self.max_cycles,
            "seed": self.seed,
            "check_invariants": self.check_invariants,
        }
        if self.fault_kind:
            record["fault_kind"] = self.fault_kind
            record["fault_seed"] = self.fault_seed
        return record

    @classmethod
    def from_record(cls, record: dict) -> "RunSpec":
        # Tolerant of journals written before a field existed (the
        # defaulted dataclass field fills the gap), so old checkpoint
        # journals stay resumable.
        return cls(
            **{f.name: record[f.name] for f in fields(cls) if f.name in record}
        )

    def config_digest(self) -> str:
        """Stable digest of the machine configuration this cell runs."""
        from .runner import make_config

        text = repr(make_config(self.mode))
        return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass
class RunFailure:
    """Structured record of why a cell failed (journal-safe)."""

    kind: str                 # RETRYABLE / FATAL / TIMEOUT
    exception: str            # exception class name
    message: str
    traceback: str
    config_digest: str
    seed: int
    diagnostics: dict | None = None   # watchdog state dump, if any

    def as_record(self) -> dict:
        return {
            "kind": self.kind,
            "exception": self.exception,
            "message": self.message,
            "traceback": self.traceback,
            "config_digest": self.config_digest,
            "seed": self.seed,
            "diagnostics": self.diagnostics,
        }

    @classmethod
    def from_record(cls, record: dict) -> "RunFailure":
        return cls(**{f.name: record.get(f.name) for f in fields(cls)})


@dataclass
class RunOutcome:
    """Final state of one campaign cell (after all retries)."""

    spec: RunSpec
    status: str                       # "ok" / "failed" / "timeout"
    attempts: int = 1
    stats: dict | None = None         # raw SimStats counters
    validated: bool = False
    halted: bool = False
    failure: RunFailure | None = None
    resumed: bool = False             # loaded from a checkpoint journal
    duration: float = 0.0             # wall seconds (not deterministic)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def key(self) -> str:
        return self.spec.key

    def sim_stats(self) -> SimStats:
        """Rebuild a SimStats (zeroed for failed cells) — derived
        properties (ipc, coverage, ...) come back exactly."""
        if not self.stats:
            return SimStats()
        return SimStats(**{k: v for k, v in self.stats.items()
                           if k in STAT_FIELDS})

    def run_result(self):
        """Adapt to the harness :class:`~repro.harness.runner.RunResult`
        shape the :class:`ExperimentSuite` caches."""
        from .runner import RunResult

        failure_kind = None if self.ok else (
            TIMEOUT if self.status == "timeout" else self.failure.kind
        )
        return RunResult(
            workload=self.spec.workload,
            mode=self.spec.mode,
            stats=self.sim_stats(),
            validated=self.validated,
            halted=self.halted,
            failure=failure_kind,
            error=self.failure.message if self.failure else None,
        )

    def as_record(self) -> dict:
        return {
            "spec": self.spec.as_record(),
            "status": self.status,
            "attempts": self.attempts,
            "stats": self.stats,
            "validated": self.validated,
            "halted": self.halted,
            "failure": self.failure.as_record() if self.failure else None,
            "duration": round(self.duration, 3),
        }

    @classmethod
    def from_record(cls, record: dict) -> "RunOutcome":
        return cls(
            spec=RunSpec.from_record(record["spec"]),
            status=record["status"],
            attempts=record.get("attempts", 1),
            stats=record.get("stats"),
            validated=record.get("validated", False),
            halted=record.get("halted", False),
            failure=(
                RunFailure.from_record(record["failure"])
                if record.get("failure")
                else None
            ),
            resumed=True,
            duration=record.get("duration", 0.0),
        )


# ======================================================================
# Checkpoint journal (JSONL, append-only, corruption-tolerant)
# ======================================================================
def read_journal_lines(
    text: str,
) -> tuple[list[tuple[int, dict]], dict[str, int]]:
    """Parse newline-delimited JSON records, tolerating torn records.

    A crash mid-append can leave a *torn* record anywhere in the file —
    a partial line with the next record appended to it without an
    intervening newline (``{"spe{"spec": ...}``).  A plain
    line-by-line loader would discard the good record glued to the torn
    prefix; this reader *resynchronizes*: on a line that fails to parse
    whole, it scans forward for the next position where a complete JSON
    object decodes and recovers every object embedded in the line.

    Returns ``(records, counters)`` where records are ``(lineno, dict)``
    pairs in file order and ``counters`` tallies the damage:
    ``{"recovered": objects salvaged from torn lines,
    "skipped": lines with nothing salvageable}`` — callers surface
    these as warnings/metrics rather than silently dropping data.
    """
    decoder = json.JSONDecoder()
    records: list[tuple[int, dict]] = []
    counters = {"recovered": 0, "skipped": 0}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            obj = json.loads(stripped)
        except json.JSONDecodeError:
            pass
        else:
            if isinstance(obj, dict):
                records.append((lineno, obj))
            else:
                counters["skipped"] += 1
            continue
        # Torn line: resynchronize on the next decodable JSON object.
        pos, salvaged = 0, 0
        while True:
            start = stripped.find("{", pos)
            if start < 0:
                break
            try:
                obj, end = decoder.raw_decode(stripped, start)
            except json.JSONDecodeError:
                pos = start + 1
                continue
            if isinstance(obj, dict):
                records.append((lineno, obj))
                salvaged += 1
                pos = end
            else:
                pos = start + 1
        counters["recovered"] += salvaged
        if not salvaged:
            counters["skipped"] += 1
    return records, counters


def load_checkpoint(path: str | Path) -> dict[str, RunOutcome]:
    """Load a JSONL campaign journal, tolerating corruption anywhere in
    the file: a truncated trailing line (the normal aftermath of a
    crash mid-append) *and* a torn mid-file record are handled by
    resynchronizing on the next decodable JSON object
    (:func:`read_journal_lines`); unrecoverable lines are skipped with
    a warning, never raised.  Later records for the same cell win."""
    path = Path(path)
    outcomes: dict[str, RunOutcome] = {}
    if not path.exists():
        return outcomes
    records, counters = read_journal_lines(path.read_text())
    if counters["recovered"] or counters["skipped"]:
        warnings.warn(
            f"{path}: journal damage — recovered {counters['recovered']} "
            f"torn record(s), skipped {counters['skipped']} "
            f"unrecoverable line(s)",
            stacklevel=2,
        )
    for lineno, record in records:
        try:
            outcome = RunOutcome.from_record(record)
        except (KeyError, TypeError) as exc:
            warnings.warn(
                f"{path}:{lineno}: skipping corrupt checkpoint record "
                f"({type(exc).__name__}: {exc})",
                stacklevel=2,
            )
            continue
        outcomes[outcome.key] = outcome
    return outcomes


class CheckpointJournal:
    """Append-only JSONL writer; each record is flushed and fsynced so
    a crash loses at most the record being written."""

    def __init__(self, path: str | Path, fresh: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fresh and self.path.exists():
            self.path.unlink()

    def append(self, outcome: RunOutcome) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(outcome.as_record(), sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())


# ======================================================================
# The worker side (runs in a subprocess; must stay picklable)
# ======================================================================
def execute_spec(record: dict) -> dict:
    """Default task: simulate one cell and return its result payload.

    When a telemetry relay is ambient (installed by :func:`_worker_main`
    or the inline runner), the run is observed with event recording off
    and the relay streams sampled events + a final metrics snapshot
    back to the campaign aggregator.
    """
    from ..obs import Observation
    from .runner import run_workload

    spec = RunSpec.from_record(record)
    relay = current_relay()
    observe = None
    if relay is not None:
        observe = Observation(record_events=False)
        relay.attach(observe)
    fault_plan = None
    if spec.fault_kind:
        from ..verify import FaultPlan

        fault_plan = FaultPlan(
            seed=spec.fault_seed, kinds=(spec.fault_kind,)
        )
    result = run_workload(
        spec.workload,
        spec.mode,
        spec.scale,
        max_cycles=spec.max_cycles,
        observe=observe,
        check_invariants=spec.check_invariants,
        fault_plan=fault_plan,
    )
    if relay is not None:
        relay.send_snapshot(stats=result.stats, final=True)
    return {
        "stats": {name: getattr(result.stats, name) for name in STAT_FIELDS},
        "validated": result.validated,
        "halted": result.halted,
    }


def _worker_main(conn, task, record: dict, telemetry: dict | None = None) -> None:
    """Subprocess entry: run the task, ship ok/err through the pipe.

    ``telemetry`` (when campaign telemetry is enabled) carries the
    relay configuration — ``{"run", "worker", "sample"}`` — and installs
    a :class:`~repro.obs.aggregate.TelemetryRelay` streaming through
    the same ``conn`` as interleaved ``("telemetry", envelope)`` tuples.
    """
    if telemetry is not None:
        set_current_relay(
            TelemetryRelay(
                conn.send,
                run=telemetry["run"],
                worker=telemetry.get("worker", 0),
                sample=telemetry.get("sample"),
            )
        )
    try:
        payload = task(record)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - everything becomes data
        conn.send(
            (
                "err",
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
                bool(getattr(exc, "retryable", False)),
                dict(getattr(exc, "diagnostics", None) or {}) or None,
            )
        )
    finally:
        set_current_relay(None)
        conn.close()


# ======================================================================
# The executor
# ======================================================================
@dataclass
class _Attempt:
    spec: RunSpec
    attempt: int = 1
    ready_at: float = 0.0
    started: float = 0.0


class CampaignExecutor:
    """Fault-tolerant runner for a list of :class:`RunSpec` cells.

    ``jobs=0`` executes inline in this process (no isolation, timeouts
    unenforced — the mode unit tests and debuggers want); ``jobs>=1``
    fans out over that many worker processes with per-run wall-clock
    ``timeout`` seconds enforced by terminating the worker.

    ``task`` maps a spec record dict to a result payload dict and
    defaults to :func:`execute_spec`; tests inject flaky tasks through
    it (module-level functions only when ``jobs>=1`` — workers pickle
    the callable).  ``sleep``/``clock`` are injectable for backoff
    tests.

    Retry backoff is exponential with seeded multiplicative *jitter*
    (``delay = backoff * factor**(attempt-1) * (1 + jitter * u)``,
    ``u ~ U[0,1)`` from ``random.Random(jitter_seed)``), so a burst of
    simultaneous failures does not re-launch in lockstep; ``jitter=0``
    restores the pure exponential schedule.

    ``retry_timeouts=True`` reclassifies per-run wall-clock timeouts as
    retryable: the hung worker is terminated and *replaced* by a fresh
    attempt (within the ``retries`` budget) instead of journaling a
    terminal ``timeout`` cell.  The campaign service uses this as its
    hung-worker replacement mechanism.

    ``stop`` is a zero-argument drain hook polled between launches:
    once it returns true, no further cell is started, active workers
    are terminated *without journaling* their unfinished cells, and
    :meth:`run` returns only the cells that settled — the journal plus
    a later ``resume=True`` run picks up exactly where the drain cut
    off.
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.5,
        backoff_factor: float = 2.0,
        jitter: float = 0.1,
        jitter_seed: int = 0,
        retry_timeouts: bool = False,
        task=None,
        observation=None,
        sleep=time.sleep,
        clock=time.monotonic,
        telemetry=None,
        telemetry_sample: dict | None = None,
        stop=None,
    ):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        self.retry_timeouts = retry_timeouts
        self.task = task or execute_spec
        self.observation = observation
        # Campaign telemetry: a repro.obs.aggregate.TelemetryAggregator
        # receiving worker relay streams (None = telemetry off).
        self.telemetry = telemetry
        self.telemetry_sample = telemetry_sample
        self.stop = stop
        self._jitter_rng = _random.Random(jitter_seed)
        self._worker_counter = 0
        self._sleep = sleep
        self._clock = clock

    # -- lifecycle telemetry -------------------------------------------
    def _emit(self, type_: str, spec: RunSpec, **data) -> None:
        obs = self.observation
        if obs is None:
            return
        obs.bus.emit(type_, workload=spec.workload, mode=spec.mode, **data)
        obs.metrics.counter(f"campaign.{type_}").inc()

    # -- public API ----------------------------------------------------
    def run(
        self,
        specs,
        checkpoint: str | Path | None = None,
        resume: bool = False,
    ) -> list[RunOutcome]:
        """Execute every spec; returns outcomes in spec order.

        With ``checkpoint``, completed cells are journaled as they
        finish; with ``resume`` additionally set, cells already in the
        journal are skipped and returned as ``resumed`` outcomes.
        """
        specs = list(specs)
        journal = None
        completed: dict[str, RunOutcome] = {}
        if checkpoint is not None:
            if resume:
                completed = load_checkpoint(checkpoint)
            journal = CheckpointJournal(checkpoint, fresh=not resume)

        if self.telemetry is not None:
            self.telemetry.register_specs(specs)

        outcomes: dict[str, RunOutcome] = {}
        pending: deque[_Attempt] = deque()
        for spec in specs:
            if spec.key in completed:
                outcomes[spec.key] = completed[spec.key]
                if self.telemetry is not None:
                    self.telemetry.on_run_settled(completed[spec.key])
            else:
                pending.append(_Attempt(spec))

        if pending:
            execute = self._run_inline if self.jobs == 0 else self._run_pool
            execute(pending, outcomes, journal)
        # A drain (``stop`` hook) leaves unfinished cells unsettled;
        # they are simply absent from the returned list and stay
        # resumable from the journal.
        return [outcomes[spec.key] for spec in specs if spec.key in outcomes]

    # -- shared bookkeeping --------------------------------------------
    def _stopping(self) -> bool:
        return self.stop is not None and bool(self.stop())

    def _backoff_delay(self, attempt: int) -> tuple[float, float]:
        """``(base, jittered)`` delay before re-attempting."""
        base = self.backoff * (self.backoff_factor ** (attempt - 1))
        if self.jitter <= 0:
            return base, base
        return base, base * (1.0 + self.jitter * self._jitter_rng.random())

    def _settle(
        self,
        item: _Attempt,
        outcome: RunOutcome,
        outcomes: dict,
        journal,
    ) -> None:
        outcomes[item.spec.key] = outcome
        if journal is not None:
            journal.append(outcome)
        if self.telemetry is not None:
            self.telemetry.on_run_settled(outcome)
        if outcome.ok:
            self._emit(
                "run_finished", item.spec, attempts=outcome.attempts,
            )
        else:
            self._emit(
                "run_failed",
                item.spec,
                kind=outcome.failure.kind,
                exception=outcome.failure.exception,
                attempts=outcome.attempts,
            )

    def _failure(
        self,
        item: _Attempt,
        kind: str,
        exception: str,
        message: str,
        tb: str,
        diagnostics: dict | None = None,
    ) -> RunFailure:
        return RunFailure(
            kind=kind,
            exception=exception,
            message=message,
            traceback=tb,
            config_digest=item.spec.config_digest(),
            seed=item.spec.seed,
            diagnostics=diagnostics,
        )

    def _should_retry(self, item: _Attempt, kind: str) -> bool:
        return kind == RETRYABLE and item.attempt <= self.retries

    def _requeue(self, item: _Attempt, pending: deque) -> None:
        backoff, delay = self._backoff_delay(item.attempt)
        self._emit(
            "run_retried", item.spec,
            attempt=item.attempt, backoff=backoff, delay=delay,
        )
        if self.telemetry is not None:
            self.telemetry.on_run_retried(item.spec.key)
        pending.append(
            _Attempt(
                item.spec,
                attempt=item.attempt + 1,
                ready_at=self._clock() + delay,
            )
        )

    # -- inline (jobs == 0) --------------------------------------------
    def _run_inline(self, pending: deque, outcomes: dict, journal) -> None:
        while pending:
            if self._stopping():
                return
            item = pending.popleft()
            now = self._clock()
            if item.ready_at > now:
                self._sleep(item.ready_at - now)
            self._emit("run_started", item.spec, attempt=item.attempt)
            started = self._clock()
            relay = None
            if self.telemetry is not None:
                aggregator = self.telemetry
                aggregator.on_run_started(item.spec.key, item.attempt)
                self._worker_counter += 1
                # Inline mode short-circuits the pipe: the relay's send
                # feeds the aggregator directly.
                relay = TelemetryRelay(
                    lambda msg: aggregator.ingest(msg[1]),
                    run=item.spec.key,
                    worker=self._worker_counter,
                    sample=self.telemetry_sample,
                )
                set_current_relay(relay)
            try:
                payload = self.task(item.spec.as_record())
            except Exception as exc:  # noqa: BLE001
                kind = classify_exception(
                    type(exc).__name__, bool(getattr(exc, "retryable", False))
                )
                if self._should_retry(item, kind):
                    self._requeue(item, pending)
                    continue
                failure = self._failure(
                    item,
                    kind,
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                    dict(getattr(exc, "diagnostics", None) or {}) or None,
                )
                outcome = RunOutcome(
                    spec=item.spec,
                    status="failed",
                    attempts=item.attempt,
                    failure=failure,
                    duration=self._clock() - started,
                )
            else:
                outcome = RunOutcome(
                    spec=item.spec,
                    status="ok",
                    attempts=item.attempt,
                    stats=payload.get("stats"),
                    validated=payload.get("validated", False),
                    halted=payload.get("halted", False),
                    duration=self._clock() - started,
                )
            finally:
                if relay is not None:
                    set_current_relay(None)
            self._settle(item, outcome, outcomes, journal)

    # -- process pool (jobs >= 1) --------------------------------------
    def _run_pool(self, pending: deque, outcomes: dict, journal) -> None:
        ctx = mp.get_context()
        active: list[dict] = []   # {"proc", "conn", "item"}

        def launch(item: _Attempt) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            telemetry = None
            if self.telemetry is not None:
                # A fresh worker id per launch gives every attempt its
                # own sequence-number space in the aggregator.
                self._worker_counter += 1
                telemetry = {
                    "run": item.spec.key,
                    "worker": self._worker_counter,
                    "sample": self.telemetry_sample,
                }
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, self.task, item.spec.as_record(), telemetry),
                daemon=True,
            )
            item.started = self._clock()
            proc.start()
            child_conn.close()
            self._emit("run_started", item.spec, attempt=item.attempt)
            if self.telemetry is not None:
                self.telemetry.on_run_started(item.spec.key, item.attempt)
            active.append({"proc": proc, "conn": parent_conn, "item": item})

        def reap(entry: dict, msg) -> None:
            active.remove(entry)
            entry["conn"].close()
            entry["proc"].join()
            item = entry["item"]
            duration = self._clock() - item.started
            if msg is not None and msg[0] == "ok":
                outcome = RunOutcome(
                    spec=item.spec,
                    status="ok",
                    attempts=item.attempt,
                    stats=msg[1].get("stats"),
                    validated=msg[1].get("validated", False),
                    halted=msg[1].get("halted", False),
                    duration=duration,
                )
                self._settle(item, outcome, outcomes, journal)
                return
            if msg is not None:  # ("err", name, message, tb, retryable, diag)
                _, name, message, tb, retryable, diag = msg
                kind = classify_exception(name, retryable)
            else:  # pipe closed without a message: the worker died
                name = "WorkerDied"
                message = f"worker exited with code {entry['proc'].exitcode}"
                tb, diag = "", None
                kind = RETRYABLE
            if self._should_retry(item, kind):
                self._requeue(item, pending)
                return
            failure = self._failure(item, kind, name, message, tb, diag)
            self._settle(
                item,
                RunOutcome(
                    spec=item.spec,
                    status="failed",
                    attempts=item.attempt,
                    failure=failure,
                    duration=duration,
                ),
                outcomes,
                journal,
            )

        def cancel(entry: dict) -> None:
            """Terminate an over-deadline worker: replace it with a
            fresh attempt when ``retry_timeouts`` allows, otherwise
            journal a terminal timeout cell."""
            active.remove(entry)
            entry["conn"].close()
            proc, item = entry["proc"], entry["item"]
            proc.terminate()
            proc.join()
            if self.retry_timeouts and self._should_retry(item, RETRYABLE):
                self._requeue(item, pending)
                return
            failure = self._failure(
                item,
                TIMEOUT,
                "RunTimeout",
                f"exceeded {self.timeout}s wall-clock limit",
                "",
            )
            self._settle(
                item,
                RunOutcome(
                    spec=item.spec,
                    status="timeout",
                    attempts=item.attempt,
                    failure=failure,
                    duration=self._clock() - item.started,
                ),
                outcomes,
                journal,
            )

        while pending or active:
            if self._stopping():
                # Graceful drain: terminate active workers without
                # journaling their cells (the journal keeps only
                # *settled* cells, so resume recomputes exactly these).
                for entry in list(active):
                    entry["conn"].close()
                    entry["proc"].terminate()
                    entry["proc"].join()
                active.clear()
                pending.clear()
                return
            now = self._clock()
            # Launch every ready pending item into free slots.
            launched = True
            while launched and len(active) < self.jobs:
                launched = False
                for i, item in enumerate(pending):
                    if item.ready_at <= now:
                        del pending[i]
                        launch(item)
                        launched = True
                        break
            if not active:
                # Everything pending is backing off; sleep to the first
                # (in short slices when a drain hook could fire).
                next_ready = min(item.ready_at for item in pending)
                doze = max(0.0, next_ready - self._clock())
                if self.stop is not None:
                    doze = min(doze, 0.25)
                self._sleep(doze)
                continue
            # Wait for a result, the nearest deadline, or the next
            # backoff expiry — whichever comes first.
            wait_for = 60.0 if self.stop is None else 0.25
            if self.timeout is not None:
                nearest = min(
                    e["item"].started + self.timeout for e in active
                )
                wait_for = min(wait_for, max(0.0, nearest - now))
            if pending:
                next_ready = min(item.ready_at for item in pending)
                wait_for = min(wait_for, max(0.0, next_ready - now))
            ready = _conn_wait([e["conn"] for e in active], timeout=wait_for)
            for conn in ready:
                entry = next(e for e in active if e["conn"] is conn)
                # Drain interleaved telemetry without reaping: the
                # worker is still running until it ships ok/err (or
                # dies, closing the pipe).
                while True:
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        reap(entry, None)
                        break
                    if (
                        isinstance(msg, tuple)
                        and msg
                        and msg[0] == "telemetry"
                    ):
                        if self.telemetry is not None:
                            self.telemetry.ingest(msg[1])
                        if conn.poll():
                            continue
                        break
                    reap(entry, msg)
                    break
            if self.timeout is not None:
                now = self._clock()
                for entry in [
                    e
                    for e in active
                    if now - e["item"].started > self.timeout
                ]:
                    cancel(entry)


# ======================================================================
# Convenience: full-matrix campaign
# ======================================================================
def matrix_specs(
    workloads,
    modes,
    scale: str = "bench",
    max_cycles: int = 30_000_000,
) -> list[RunSpec]:
    """The cross product of workloads × modes as run specs."""
    return [
        RunSpec(workload=w, mode=m, scale=scale, max_cycles=max_cycles)
        for w in workloads
        for m in modes
    ]


def summarize_outcomes(outcomes) -> dict:
    """Counts by status plus the failed-cell keys (for CLI reporting)."""
    summary = {
        "total": len(outcomes),
        "ok": sum(1 for o in outcomes if o.ok),
        "failed": sum(1 for o in outcomes if o.status == "failed"),
        "timeout": sum(1 for o in outcomes if o.status == "timeout"),
        "resumed": sum(1 for o in outcomes if o.resumed),
        "retried": sum(1 for o in outcomes if o.attempts > 1),
        "failed_cells": {
            o.key: o.failure.kind for o in outcomes if not o.ok
        },
    }
    return summary
