"""Formatting helpers for experiment output (paper-style tables)."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; tolerates values <= 0 by flooring at 1e-9."""
    values = [max(v, 1e-9) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_percent(new_ipc: float, base_ipc: float) -> float:
    """IPC improvement in percent (the paper's y-axis in Figs. 5/8/9)."""
    if base_ipc <= 0:
        return 0.0
    return 100.0 * (new_ipc / base_ipc - 1.0)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    floatfmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table (stable output for tee'd logs)."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                floatfmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
