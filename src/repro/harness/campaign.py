"""Campaign persistence: save, load, and diff experiment results.

A *campaign* is one full run of the :class:`ExperimentSuite` — every
(workload, mode) simulation plus the derived figure data.  Persisting
campaigns as JSON makes runs comparable across simulator versions:
``diff_campaigns`` highlights per-benchmark IPC movements, which is how
a change to (say) the scheduler shows up as a Fig. 5 regression.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from .experiments import ExperimentSuite

_SCHEMA_VERSION = 1

#: Raw counters preserved per (workload, mode) run.
_KEPT_COUNTERS = (
    "cycles",
    "retired_instructions",
    "direction_mispredicts",
    "target_mispredicts",
    "flushes",
    "early_flushes",
    "covered_timely",
    "covered_late",
    "incorrect_precomputations",
    "uncovered_mispredicts",
    "tea_resolved_branches",
    "tea_wrong_resolutions",
    "tea_cycles_saved",
    "fetched_uops",
    "tea_fetched_uops",
    "runahead_overrides",
    "runahead_wrong_overrides",
)


def run_to_dict(result) -> dict:
    """The per-run payload kept in a campaign file.

    Failed cells (``result.failure`` set) carry their failure kind and
    message alongside zeroed counters, so a journaled campaign keeps a
    complete record of the matrix rather than silently dropping cells.
    """
    stats = result.stats
    payload = {
        "ipc": stats.ipc,
        "mpki": stats.mpki,
        "coverage": stats.coverage,
        "accuracy": stats.tea_accuracy,
        "validated": result.validated,
        "halted": result.halted,
        **{name: getattr(stats, name) for name in _KEPT_COUNTERS},
    }
    if result.failure is not None:
        payload["failure"] = result.failure
        payload["error"] = result.error
    return payload


def campaign_to_dict(suite: ExperimentSuite) -> dict:
    """Serialize everything the suite has simulated so far."""
    runs = {
        f"{workload}/{mode}": run_to_dict(result)
        for (workload, mode), result in suite._cache.items()
    }
    return {
        "schema": _SCHEMA_VERSION,
        "scale": suite.scale,
        "workloads": list(suite.workloads),
        "runs": runs,
    }


def save_campaign(suite: ExperimentSuite, path: str | Path) -> Path:
    """Write the suite's accumulated results to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(campaign_to_dict(suite), indent=2, sort_keys=True))
    return path


def load_campaign(path: str | Path) -> dict:
    """Load a previously saved campaign (JSON file or JSONL journal).

    Corruption tolerance: a truncated or corrupt trailing JSONL record
    (the normal aftermath of a crash mid-append) is skipped with a
    warning rather than raised; a corrupt single-JSON campaign raises a
    typed :class:`ValueError` naming the file, never a bare
    ``JSONDecodeError`` from deep inside the json module.
    """
    path = Path(path)
    text = path.read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        # Not a single JSON document — either an executor JSONL journal
        # or a corrupt file.  The tolerant journal loader skips bad
        # lines; if nothing survives, the file really is corrupt.
        from .executor import load_checkpoint

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcomes = load_checkpoint(path)
        if not outcomes:
            # Nothing survived; the per-line warnings are noise next to
            # the typed error.
            raise ValueError(
                f"corrupt campaign file {path}: {exc}"
            ) from exc
        for w in caught:
            warnings.warn_explicit(
                w.message, w.category, w.filename, w.lineno
            )
        runs = {
            key: run_to_dict(outcome.run_result())
            for key, outcome in outcomes.items()
        }
        scales = {o.spec.scale for o in outcomes.values()}
        return {
            "schema": _SCHEMA_VERSION,
            "scale": scales.pop() if len(scales) == 1 else "mixed",
            "workloads": sorted({o.spec.workload for o in outcomes.values()}),
            "runs": runs,
        }
    if not isinstance(data, dict):
        raise ValueError(f"corrupt campaign file {path}: not a JSON object")
    if "spec" in data and "status" in data:
        # A single-record executor journal parses as plain JSON too.
        from .executor import load_checkpoint

        outcomes = load_checkpoint(path)
        return {
            "schema": _SCHEMA_VERSION,
            "scale": next(iter(outcomes.values())).spec.scale,
            "workloads": sorted({o.spec.workload for o in outcomes.values()}),
            "runs": {
                key: run_to_dict(outcome.run_result())
                for key, outcome in outcomes.items()
            },
        }
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported campaign schema: {data.get('schema')!r}")
    bad = [key for key, run in data.get("runs", {}).items()
           if not isinstance(run, dict) or "ipc" not in run]
    for key in bad:
        warnings.warn(f"{path}: skipping corrupt run record {key!r}",
                      stacklevel=2)
        del data["runs"][key]
    return data


def diff_campaigns(
    before: dict, after: dict, threshold_pct: float = 1.0
) -> list[dict]:
    """Per-run IPC movements beyond ``threshold_pct``, largest first.

    Returns ``[{"run", "before_ipc", "after_ipc", "delta_pct"}, ...]``
    covering runs present in both campaigns.
    """
    movements = []
    for key, new in after["runs"].items():
        old = before["runs"].get(key)
        if old is None or old["ipc"] <= 0:
            continue
        if "failure" in old or "failure" in new:
            continue  # failed cells have no meaningful IPC to diff
        delta = 100.0 * (new["ipc"] / old["ipc"] - 1.0)
        if abs(delta) >= threshold_pct:
            movements.append(
                {
                    "run": key,
                    "before_ipc": old["ipc"],
                    "after_ipc": new["ipc"],
                    "delta_pct": delta,
                }
            )
    movements.sort(key=lambda m: abs(m["delta_pct"]), reverse=True)
    return movements
