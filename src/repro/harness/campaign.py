"""Campaign persistence: save, load, and diff experiment results.

A *campaign* is one full run of the :class:`ExperimentSuite` — every
(workload, mode) simulation plus the derived figure data.  Persisting
campaigns as JSON makes runs comparable across simulator versions:
``diff_campaigns`` highlights per-benchmark IPC movements, which is how
a change to (say) the scheduler shows up as a Fig. 5 regression.
"""

from __future__ import annotations

import json
from pathlib import Path

from .experiments import ExperimentSuite

_SCHEMA_VERSION = 1

#: Raw counters preserved per (workload, mode) run.
_KEPT_COUNTERS = (
    "cycles",
    "retired_instructions",
    "direction_mispredicts",
    "target_mispredicts",
    "flushes",
    "early_flushes",
    "covered_timely",
    "covered_late",
    "incorrect_precomputations",
    "uncovered_mispredicts",
    "tea_resolved_branches",
    "tea_wrong_resolutions",
    "tea_cycles_saved",
    "fetched_uops",
    "tea_fetched_uops",
    "runahead_overrides",
    "runahead_wrong_overrides",
)


def campaign_to_dict(suite: ExperimentSuite) -> dict:
    """Serialize everything the suite has simulated so far."""
    runs = {}
    for (workload, mode), result in suite._cache.items():
        stats = result.stats
        runs[f"{workload}/{mode}"] = {
            "ipc": stats.ipc,
            "mpki": stats.mpki,
            "coverage": stats.coverage,
            "accuracy": stats.tea_accuracy,
            "validated": result.validated,
            "halted": result.halted,
            **{name: getattr(stats, name) for name in _KEPT_COUNTERS},
        }
    return {
        "schema": _SCHEMA_VERSION,
        "scale": suite.scale,
        "workloads": list(suite.workloads),
        "runs": runs,
    }


def save_campaign(suite: ExperimentSuite, path: str | Path) -> Path:
    """Write the suite's accumulated results to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(campaign_to_dict(suite), indent=2, sort_keys=True))
    return path


def load_campaign(path: str | Path) -> dict:
    """Load a previously saved campaign."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported campaign schema: {data.get('schema')!r}")
    return data


def diff_campaigns(
    before: dict, after: dict, threshold_pct: float = 1.0
) -> list[dict]:
    """Per-run IPC movements beyond ``threshold_pct``, largest first.

    Returns ``[{"run", "before_ipc", "after_ipc", "delta_pct"}, ...]``
    covering runs present in both campaigns.
    """
    movements = []
    for key, new in after["runs"].items():
        old = before["runs"].get(key)
        if old is None or old["ipc"] <= 0:
            continue
        delta = 100.0 * (new["ipc"] / old["ipc"] - 1.0)
        if abs(delta) >= threshold_pct:
            movements.append(
                {
                    "run": key,
                    "before_ipc": old["ipc"],
                    "after_ipc": new["ipc"],
                    "delta_pct": delta,
                }
            )
    movements.sort(key=lambda m: abs(m["delta_pct"]), reverse=True)
    return movements
