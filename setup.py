"""Setuptools entry point.

The environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable
wheel.  ``python setup.py develop`` performs the equivalent legacy
editable install; the Makefile-ish commands in README use it.
"""

from setuptools import setup

setup()
