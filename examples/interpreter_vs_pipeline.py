#!/usr/bin/env python3
"""Write your own micro-ISA program and check it on both engines.

Demonstrates the library as a general toolkit: assemble a program, run
it on the 1-instruction-at-a-time golden interpreter and on the
cycle-level OoO pipeline, verify they agree, and inspect pipeline
behaviour (IPC, mispredictions, cache hits).

Run:  python examples/interpreter_vs_pipeline.py
"""

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.isa import run_program

# Sieve of Eratosthenes over [2, 500): branchy, store-heavy, and with
# a data-dependent inner-loop guard.
SOURCE = """
    li r1, 4096        # flags[] base (0 = prime)
    li r2, 500         # limit
    li r3, 2           # p
outer:
    mul r4, r3, r3
    bge r4, r2, count  # p*p >= limit -> done sieving
    shli r5, r3, 3
    add r5, r5, r1
    ld r6, 0(r5)
    bnez r6, next_p    # composite: skip (data-dependent)
    mov r7, r4         # m = p*p
mark:
    bge r7, r2, next_p
    shli r8, r7, 3
    add r8, r8, r1
    li r9, 1
    st r9, 0(r8)       # flags[m] = 1
    add r7, r7, r3
    jmp mark
next_p:
    addi r3, r3, 1
    jmp outer
count:
    li r10, 0          # prime counter
    li r3, 2
tally:
    bge r3, r2, done
    shli r5, r3, 3
    add r5, r5, r1
    ld r6, 0(r5)
    bnez r6, not_prime
    addi r10, r10, 1
not_prime:
    addi r3, r3, 1
    jmp tally
done:
    halt
"""


def main() -> None:
    program = assemble(SOURCE)
    print(f"program: {len(program)} instructions, "
          f"{len(program.basic_blocks)} basic blocks")

    print("\nrunning the golden-model interpreter ...")
    reference = run_program(program, MemoryImage())
    print(f"  executed {reference.instructions_executed} instructions")
    print(f"  primes below 500: {reference.registers[10]}")

    print("\nrunning the cycle-level OoO pipeline ...")
    pipeline = Pipeline(program, MemoryImage(), SimConfig())
    stats = pipeline.run(max_cycles=5_000_000)
    assert pipeline.halted
    print(f"  retired {stats.retired_instructions} instructions "
          f"in {stats.cycles} cycles (IPC {stats.ipc:.2f})")
    print(f"  branch MPKI {stats.mpki:.1f}, flushes {stats.flushes}")
    print(f"  L1D hit rate {pipeline.hierarchy.l1d.hit_rate():.3f}, "
          f"L1I hit rate {pipeline.hierarchy.l1i.hit_rate():.3f}")

    match = pipeline.architectural_register(10) == reference.registers[10]
    print(f"\npipeline result matches interpreter: {match}")
    assert match
    assert pipeline.memory.snapshot() == reference.memory.snapshot()
    print("memory images identical — speculation left no trace.")


if __name__ == "__main__":
    main()
