#!/usr/bin/env python3
"""Visualize the TEA thread racing the main thread through the pipe.

Attaches a :class:`PipelineTracer` to a short H2P-loop run and renders
two timelines: the main thread alone, then the same code with the TEA
thread — whose copies of the H2P branch (rows marked ``~``) execute
many cycles before the main-thread copies, triggering early flushes.

Run:  python examples/pipeline_timeline.py
"""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.core import PipelineTracer
from repro.tea import TeaConfig

KERNEL = """
    li r1, 0
    li r2, 0
    li r3, 400
    li r4, 4096
loop:
    shli r5, r2, 3
    add  r5, r5, r4
    ld   r6, 0(r5)
    blt  r6, r0, skip
    add  r1, r1, r6
skip:
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
"""


def build_memory() -> MemoryImage:
    rng = random.Random(77)
    memory = MemoryImage()
    memory.write_array(4096, [rng.choice([-1, 1]) for _ in range(400)])
    return memory


def run_traced(tea: bool):
    config = SimConfig(tea=TeaConfig() if tea else None)
    pipeline = Pipeline(assemble(KERNEL), build_memory(), config)
    tracer = PipelineTracer(limit=20_000)
    tracer.attach(pipeline)
    pipeline.run(max_cycles=200_000)
    assert pipeline.halted
    return pipeline, tracer


def main() -> None:
    print("legend: F fetch  R rename  E execute  C complete  T retire")
    print("        '~' = TEA-thread copy, 'x' = squashed, '!' = mispredicted\n")

    print("=== baseline (a misprediction mid-window forces a refetch) ===")
    pipeline, tracer = run_traced(tea=False)
    mispredicted = next(
        r for r in tracer.uops() if r.mispredicted and not r.squashed and r.seq > 100
    )
    print(tracer.render(start_seq=mispredicted.seq - 6, count=16, width=72))

    print("\n=== with the TEA thread ===")
    pipeline, tracer = run_traced(tea=True)
    tea_branches = [
        r for r in tracer.uops() if r.is_tea and r.opcode == "blt" and r.complete > 0
    ]
    target = None
    best_gap = 0
    for record in tea_branches:
        gap = tracer.branch_resolution_gap(record.seq)
        if gap is not None and gap > best_gap:
            best_gap, target = gap, record
    if target is None:
        print("(no paired TEA/main branch found in the trace window)")
        return
    print(tracer.render(start_seq=target.seq - 6, count=16, width=72))
    print(f"\nTEA copy of branch seq={target.seq} completed {best_gap} cycles "
          "before the main-thread copy —")
    print("that difference is the misprediction penalty an early flush saves.")


if __name__ == "__main__":
    main()
