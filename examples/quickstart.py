#!/usr/bin/env python3
"""Quickstart: simulate a hard-to-predict branch with and without the
TEA precomputation thread.

This is the paper's motivating scenario in miniature: a loop guarded by
a branch whose direction depends on random data.  TAGE-SC-L cannot
learn it, so the baseline core pays a full pipeline flush every other
iteration.  The TEA thread precomputes the branch from its dependence
chain and issues *early misprediction flushes*, recovering most of the
penalty.

Run:  python examples/quickstart.py
"""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.tea import TeaConfig

KERNEL = """
    li r1, 0          # sum of non-negative entries
    li r2, 0          # i
    li r3, 4000       # n
    li r4, 4096       # data[]
loop:
    shli r5, r2, 3
    add  r5, r5, r4
    ld   r6, 0(r5)    # data[i]
    blt  r6, r0, skip # <- the H2P branch: sign of random data
    add  r1, r1, r6
skip:
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
"""


def build_memory() -> tuple[MemoryImage, int]:
    rng = random.Random(2024)
    values = [rng.choice([-1, 1]) * rng.randint(1, 9) for _ in range(4000)]
    memory = MemoryImage()
    memory.write_array(4096, values)
    return memory, sum(v for v in values if v >= 0)


def run(tea: bool):
    memory, expected = build_memory()
    config = SimConfig(tea=TeaConfig() if tea else None)
    pipeline = Pipeline(assemble(KERNEL), memory, config)
    stats = pipeline.run(max_cycles=5_000_000)
    assert pipeline.halted, "kernel did not finish"
    assert pipeline.architectural_register(1) == expected, "wrong result!"
    return stats


def main() -> None:
    print("simulating baseline 8-wide OoO core ...")
    base = run(tea=False)
    print("simulating the same core + TEA thread ...")
    tea = run(tea=True)

    print()
    print(f"{'':24s}{'baseline':>12s}{'with TEA':>12s}")
    print(f"{'IPC':24s}{base.ipc:12.3f}{tea.ipc:12.3f}")
    print(f"{'branch MPKI':24s}{base.mpki:12.1f}{tea.mpki:12.1f}")
    print(f"{'pipeline flushes':24s}{base.flushes:12d}{tea.flushes:12d}")
    print(f"{'early flushes (TEA)':24s}{0:12d}{tea.early_flushes:12d}")
    print()
    print(f"speedup:                 {tea.ipc / base.ipc:.2f}x")
    print(f"misprediction coverage:  {100 * tea.coverage:.1f}%")
    print(f"precomputation accuracy: {100 * tea.tea_accuracy:.2f}%")
    print(f"avg cycles saved/branch: {tea.avg_cycles_saved:.1f}")
    print()
    print("Both runs computed the identical architectural result —")
    print("the TEA thread is pure speculation, it only moves flushes earlier.")


if __name__ == "__main__":
    main()
