#!/usr/bin/env python3
"""Case study: breadth-first search (the paper's Fig. 1 pattern).

The GAP benchmarks' inner loops all share one shape: a load feeding a
data-dependent "visited?" check.  This script runs the real BFS kernel
over a synthetic graph under four machines — baseline, TEA on-core,
TEA on a dedicated engine, and Branch Runahead — and prints the
comparison row that Figs. 5/8/9 aggregate.

Run:  python examples/gap_bfs_study.py [num_nodes]
"""

import sys

from repro import Pipeline, SimConfig
from repro.harness import make_config, speedup_percent
from repro.workloads import gap


def simulate(workload, mode: str):
    pipeline = Pipeline(workload.program, workload.fresh_memory(), make_config(mode))
    stats = pipeline.run(max_cycles=20_000_000)
    assert pipeline.halted
    assert workload.validate(pipeline), f"BFS produced wrong parents under {mode}"
    return stats


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 700
    workload = gap.bfs(num_nodes=num_nodes, avg_degree=8, seed=11)
    print(f"BFS over a uniform graph: {num_nodes} nodes, avg degree 8")
    print(f"category: {workload.category} control flow\n")

    results = {}
    for mode in ("baseline", "tea", "tea_dedicated", "runahead"):
        print(f"  simulating {mode} ...")
        results[mode] = simulate(workload, mode)

    base = results["baseline"]
    print()
    print(f"{'machine':16s}{'IPC':>8s}{'MPKI':>8s}{'speedup':>10s}")
    for mode, stats in results.items():
        pct = speedup_percent(stats.ipc, base.ipc)
        print(f"{mode:16s}{stats.ipc:8.3f}{stats.mpki:8.1f}{pct:+9.1f}%")

    tea = results["tea"]
    print()
    print("TEA thread internals:")
    print(f"  misprediction coverage    {100 * tea.coverage:.1f}%")
    print(f"  precomputation accuracy   {100 * tea.tea_accuracy:.2f}%")
    print(f"  early flushes issued      {tea.early_flushes}")
    print(f"  avg mispredict cycles saved  {tea.avg_cycles_saved:.1f}")
    print(f"  thread initiations        {tea.tea_initiations}")
    print(f"  TEA uops fetched          {tea.tea_fetched_uops}"
          f"  (main: {tea.fetched_uops})")


if __name__ == "__main__":
    main()
