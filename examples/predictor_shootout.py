#!/usr/bin/env python3
"""Predictor shootout: why precomputation instead of better prediction?

The paper's premise is that H2P branches are *fundamentally* hard for
history-based predictors — any of them.  This script runs one workload
under gshare, a hashed perceptron, and TAGE-SC-L, then adds the TEA
thread on top of TAGE-SC-L: the predictor upgrades barely move the
needle on H2P-dominated code, while precomputation does.

Run:  python examples/predictor_shootout.py [workload]
"""

import sys

from repro import Pipeline, SimConfig
from repro.frontend import FrontendConfig
from repro.harness import speedup_percent
from repro.tea import TeaConfig
from repro.workloads import make_workload

PREDICTORS = ("gshare", "perceptron", "tagescl")


def simulate(workload, predictor: str, tea: bool = False):
    config = SimConfig(
        frontend=FrontendConfig(conditional_predictor=predictor),
        tea=TeaConfig() if tea else None,
    )
    pipeline = Pipeline(workload.program, workload.fresh_memory(), config)
    stats = pipeline.run(max_cycles=20_000_000)
    assert pipeline.halted and workload.validate(pipeline)
    return stats


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    workload = make_workload(name, "tiny")
    print(f"workload: {name}\n")

    results = {}
    for predictor in PREDICTORS:
        print(f"  simulating {predictor} ...")
        results[predictor] = simulate(workload, predictor)
    print("  simulating tagescl + TEA thread ...")
    results["tagescl + TEA"] = simulate(workload, "tagescl", tea=True)

    base = results["gshare"]
    print()
    print(f"{'frontend':20s}{'IPC':>8s}{'MPKI':>8s}{'vs gshare':>11s}")
    for label, stats in results.items():
        pct = speedup_percent(stats.ipc, base.ipc)
        print(f"{label:20s}{stats.ipc:8.3f}{stats.mpki:8.1f}{pct:+10.1f}%")
    print()
    print("Better predictors shave the easy mispredictions; the")
    print("data-dependent H2P branches survive every history-based")
    print("predictor — they need precomputation.")


if __name__ == "__main__":
    main()
