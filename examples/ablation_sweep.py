#!/usr/bin/env python3
"""Sweep the TEA thread-construction features (the paper's Fig. 10).

Runs one workload under every ablation configuration and prints the
accuracy / coverage / timeliness triple the paper plots, plus IPC.
Useful for exploring *why* each feature matters on a given kernel.

Run:  python examples/ablation_sweep.py [workload] [scale]
      (defaults: mcf tiny — mcf is the multi-control-flow showcase)
"""

import sys

from repro.harness import run_workload, speedup_percent

ABLATIONS = (
    ("baseline", "baseline core"),
    ("tea", "TEA (all features)"),
    ("tea_only_loops", "only loops"),
    ("tea_no_masks", "no masks"),
    ("tea_no_mem", "no mem"),
    ("tea_no_features", "no features"),
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    print(f"workload: {name} ({scale} scale)\n")

    results = {}
    for mode, label in ABLATIONS:
        print(f"  simulating {label} ...")
        results[mode] = run_workload(name, mode, scale)

    base_ipc = results["baseline"].ipc
    print()
    header = f"{'configuration':22s}{'IPC':>8s}{'speedup':>9s}{'accuracy':>10s}{'coverage':>10s}{'saved':>7s}"
    print(header)
    print("-" * len(header))
    for mode, label in ABLATIONS:
        stats = results[mode].stats
        pct = speedup_percent(stats.ipc, base_ipc)
        if mode == "baseline":
            print(f"{label:22s}{stats.ipc:8.3f}{'':9s}{'':10s}{'':10s}")
            continue
        print(
            f"{label:22s}{stats.ipc:8.3f}{pct:+8.1f}%"
            f"{100 * stats.tea_accuracy:9.1f}%{100 * stats.coverage:9.1f}%"
            f"{stats.avg_cycles_saved:7.1f}"
        )
    print()
    print("accuracy  = fraction of TEA-precomputed branches that were correct")
    print("coverage  = fraction of mispredictions resolved early by TEA")
    print("saved     = average misprediction-penalty cycles saved per branch")


if __name__ == "__main__":
    main()
