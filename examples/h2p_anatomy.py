#!/usr/bin/env python3
"""Anatomy of the TEA thread's construction machinery.

Walks through the paper's §III pipeline step by step on a small
program, *without* running the full simulator:

1. identify H2P branches with the misprediction-counter table,
2. fill the Fill Buffer with a retired-uop stream,
3. run the Backward Dataflow Walk and show the marked chain,
4. derive per-basic-block bit-masks and install them in the Block
   Cache — including the OR-combination across two control flows that
   reproduces the paper's Fig. 3 example.

Run:  python examples/h2p_anatomy.py
"""

from repro import assemble
from repro.isa import INSTRUCTION_BYTES
from repro.tea import (
    BlockCache,
    FillEntry,
    H2PTable,
    TeaConfig,
    backward_dataflow_walk,
)

# The paper's Fig. 3 shape: two control flows (through B or C) compute
# different inputs to the same H2P branch in block D.
SOURCE = """
blockA:
    ld  r1, 0(r10)     # used only on path A-B-D
    ld  r2, 8(r10)     # used only on path A-C-D
    add r9, r9, r0     # never part of any chain
    beq r8, r0, blockC
blockB:
    mov r3, r1
    jmp blockD
blockC:
    mov r3, r2
blockD:
    blt r3, r0, blockA # the H2P branch
    halt
"""


def fill_entry(program, pc, h2p_pcs, mem_addr=None):
    instr = program.instruction_at(pc)
    block = program.block_containing(pc)
    return FillEntry(
        pc=pc,
        dst=instr.dst if instr.dst not in (None, 0) else None,
        srcs=instr.srcs,
        is_load=instr.is_load,
        is_store=instr.is_store,
        mem_addr=mem_addr,
        is_h2p_branch=pc in h2p_pcs,
        chain_seed=False,
        bb_start=block.start_pc,
        bb_offset=(pc - block.start_pc) // INSTRUCTION_BYTES,
    )


def main() -> None:
    program = assemble(SOURCE)
    config = TeaConfig()

    print("=== 1. H2P identification (paper §IV-B) ===")
    h2p = H2PTable(config)
    branch_pc = program.labels["blockD"]
    for _ in range(3):
        h2p.record_mispredict(branch_pc)
    print(f"branch at {branch_pc:#x} counter={h2p.counter(branch_pc)} "
          f"-> H2P: {h2p.is_h2p(branch_pc)}\n")

    print("=== 2+3. Fill Buffer + Backward Dataflow Walk (§III-A) ===")
    a = program.labels["blockA"]
    b = program.labels["blockB"]
    c = program.labels["blockC"]
    d = program.labels["blockD"]
    h2p_pcs = {branch_pc}

    def trace(path_pcs, label):
        entries = [fill_entry(program, pc, h2p_pcs, mem_addr=4096 + pc)
                   for pc in path_pcs]
        result = backward_dataflow_walk(entries, config)
        print(f"path {label}:")
        for entry, marked in zip(entries, result.marked):
            instr = program.instruction_at(entry.pc)
            flag = "CHAIN" if marked else "     "
            print(f"  [{flag}] {instr.pc:#06x}  {instr.opcode}")
        return entries, result

    path_abd = [a, a + 4, a + 8, a + 12, b, b + 4, d]
    path_acd = [a, a + 4, a + 8, a + 12, c, d]
    entries_1, walk_1 = trace(path_abd, "A-B-D (uses r1 -> first load)")
    print()
    entries_2, walk_2 = trace(path_acd, "A-C-D (uses r2 -> second load)")

    print("\n=== 4. Block Cache bit-masks, OR-combined (§III-E) ===")
    cache = BlockCache(config)

    def install(entries, result):
        masks = {}
        for i, entry in enumerate(entries):
            masks.setdefault(entry.bb_start, 0)
            if result.marked[i]:
                masks[entry.bb_start] |= 1 << entry.bb_offset
        for bb, mask in masks.items():
            cache.insert(bb, mask)

    install(entries_1, walk_1)
    mask_after_first = cache.peek(a)
    install(entries_2, walk_2)
    mask_after_both = cache.peek(a)
    print(f"block A mask after path A-B-D : {mask_after_first:04b}")
    print(f"block A mask after both paths : {mask_after_both:04b}")
    print("-> both loads are now in the chain, so the precomputation is")
    print("   correct whichever way the intermediate branch goes —")
    print("   at the cost of one extra uop on either path (the paper's")
    print("   accuracy-vs-timeliness trade, quantified in Fig. 10).")


if __name__ == "__main__":
    main()
