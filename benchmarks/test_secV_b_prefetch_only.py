"""§V-B check — TEA with early resolution disabled (prefetch side
effect only).  Paper: just 1.2% geomean, proving the benefit comes
from early flushes, not data prefetching."""


def test_prefetch_only_side_effect(benchmark, suite, publish):
    data = benchmark.pedantic(suite.prefetch_only, rounds=1, iterations=1)
    rows = "\n".join(
        f"  {name:12s} {value:+.2f}%" for name, value in data["speedup_pct"].items()
    )
    publish(
        "secV_b_prefetch_only",
        "SecV-B — TEA without early resolution (prefetch only)\n"
        + rows
        + f"\n  geomean {data['geomean_pct']:+.2f}% (paper: +1.2%)",
    )
    fig5 = suite.fig5()
    # The prefetch-only benefit is a small fraction of the full benefit.
    assert data["geomean_pct"] < fig5["geomean_pct"]
