"""Fig. 7 — breakdown of branch mispredictions covered by the TEA
thread (paper: 76% average coverage, <0.7% incorrect)."""


def test_fig7_coverage_breakdown(benchmark, suite, publish):
    data = benchmark.pedantic(suite.fig7, rounds=1, iterations=1)
    publish("fig7", suite.render_fig7())
    benchmark.extra_info["mean_coverage_pct"] = data["mean_coverage_pct"]
    assert data["mean_coverage_pct"] > 30.0
    for name, b in data["breakdown"].items():
        assert b["incorrect"] < 25.0, f"{name}: too many incorrect precomputations"
