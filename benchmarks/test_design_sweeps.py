"""Design-space sweep benchmarks for the paper's secondary claims
(§III-B run-ahead distance, §IV-B H2P decay, §IV-H 16-wide frontend,
§V-B Block Cache capacity).

These go beyond the main figures: they regenerate the quantitative
*discussion* points of the paper on a small workload subset.
"""

from repro.harness import (
    block_cache_sweep,
    ftq_sweep,
    h2p_marking_sweep,
    wide_frontend_comparison,
)


def test_h2p_marking_sweep(benchmark, publish):
    data = benchmark.pedantic(h2p_marking_sweep, rounds=1, iterations=1)
    rows = "\n".join(
        f"  threshold {t}: coverage {data['coverage'][t]:.2f}  "
        f"speedup {data['speedup'][t]:+.1f}%"
        for t in data["thresholds"]
    )
    publish("sweep_h2p_marking", "SecIV-B — H2P marking aggressiveness sweep\n" + rows)
    thresholds = data["thresholds"]
    # Marking fewer branches (higher threshold) must not raise coverage.
    assert data["coverage"][thresholds[-1]] <= data["coverage"][thresholds[0]] + 0.05


def test_block_cache_capacity_sweep(benchmark, publish):
    data = benchmark.pedantic(block_cache_sweep, rounds=1, iterations=1)
    rows = "\n".join(
        f"  entries {s:>5d}: coverage {data['coverage'][s]:.2f}  "
        f"speedup {data['speedup'][s]:+.1f}%"
        for s in data["sizes"]
    )
    publish("sweep_block_cache", "SecV-B — Block Cache capacity sweep "
            "(deepsjeng/omnetpp)\n" + rows)
    # Coverage must be monotone-ish in capacity on footprint-bound codes.
    sizes = data["sizes"]
    assert data["coverage"][sizes[-1]] >= data["coverage"][sizes[0]] - 0.05


def test_ftq_runahead_distance_sweep(benchmark, publish):
    data = benchmark.pedantic(ftq_sweep, rounds=1, iterations=1)
    rows = "\n".join(
        f"  ftq {c:>4d}: TEA speedup {data['speedup'][c]:+.1f}%  "
        f"avg cycles saved {data['cycles_saved'][c]:.1f}"
        for c in data["capacities"]
    )
    publish("sweep_ftq", "SecIII-B — fetch-queue (run-ahead bound) sweep\n" + rows)
    caps = data["capacities"]
    # A deeper FTQ never reduces how early the TEA thread resolves.
    assert data["cycles_saved"][caps[-1]] >= data["cycles_saved"][caps[0]] - 1.0


def test_16wide_frontend_comparison(benchmark, publish):
    data = benchmark.pedantic(wide_frontend_comparison, rounds=1, iterations=1)
    publish(
        "sweep_16wide",
        "SecIV-H — 16-wide frontend vs 8-wide + TEA thread\n"
        f"  true 16-wide core : {data['wide_pct']:+.1f}%  (paper: +2.8%)\n"
        f"  8-wide + TEA      : {data['tea_pct']:+.1f}%  (paper: +10.1%)",
    )
    # The paper's §IV-H argument: widening the frontend without more
    # predictor bandwidth is worth much less than the TEA thread.
    assert data["tea_pct"] > data["wide_pct"]


def test_prior_work_ladder(benchmark, publish):
    from repro.harness import prior_work_comparison

    data = benchmark.pedantic(prior_work_comparison, rounds=1, iterations=1)
    publish(
        "sweep_prior_work",
        "SecII — three generations of H2P mitigation (geomean speedup)\n"
        f"  CRISP/IBDA scheduling priority : {data['crisp']:+.1f}%\n"
        f"  Branch Runahead overrides      : {data['runahead']:+.1f}%\n"
        f"  TEA thread early flushes       : {data['tea']:+.1f}%",
    )
    # The paper's §II ladder: each generation buys more than the last.
    assert data["tea"] > data["crisp"]
