"""Fig. 6 — direction + target mispredictions per kilo-instruction on
the baseline core."""


def test_fig6_mpki(benchmark, suite, publish):
    data = benchmark.pedantic(suite.fig6, rounds=1, iterations=1)
    publish("fig6", suite.render_fig6())
    mpki = data["mpki"]
    # Every evaluated benchmark exceeds the paper's 0.5 MPKI cutoff.
    assert all(v > 0.5 for v in mpki.values())
    # The graph kernels are among the most misprediction-heavy, as in
    # the paper (bfs/cc/tc high, pr the lowest of GAP).
    if {"tc", "pr"} <= set(mpki):
        assert mpki["tc"] > mpki["pr"]
