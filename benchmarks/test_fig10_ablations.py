"""Fig. 10 — thread-construction feature ablations: (a) precomputation
accuracy, (b) misprediction coverage, (c) timeliness (cycles saved).

Paper shape: the full TEA configuration has ~99.3% accuracy and the
highest coverage; removing all features drops coverage the most (76%
-> 39%); each individual feature matters."""


def test_fig10_feature_ablations(benchmark, suite, publish):
    data = benchmark.pedantic(suite.fig10, rounds=1, iterations=1)
    publish("fig10", suite.render_fig10())
    means = data["means"]
    benchmark.extra_info.update(
        tea_accuracy=means["TEA"]["accuracy"],
        tea_coverage=means["TEA"]["coverage"],
        no_features_coverage=means["no features"]["coverage"],
    )
    # (a) full TEA is highly accurate.
    assert means["TEA"]["accuracy"] > 90.0
    # (b) the full configuration has the best average coverage, and
    # stripping all features loses a substantial fraction of it.
    for label in ("only loops", "no masks", "no mem", "no features"):
        assert means["TEA"]["coverage"] >= means[label]["coverage"] - 2.0
    assert means["no features"]["coverage"] < means["TEA"]["coverage"]
    # (c) timeliness exists: covered branches save real cycles.
    assert means["TEA"]["timeliness"] > 1.0
