"""Fig. 5 — performance benefit of precomputing branches with the TEA
thread on on-core resources (paper: +10.1% geomean)."""


def test_fig5_tea_speedup(benchmark, suite, publish):
    data = benchmark.pedantic(suite.fig5, rounds=1, iterations=1)
    publish("fig5", suite.render_fig5())
    benchmark.extra_info["geomean_pct"] = data["geomean_pct"]
    benchmark.extra_info["paper_geomean_pct"] = data["paper_geomean_pct"]
    # Shape checks: TEA helps overall and on most benchmarks.
    assert data["geomean_pct"] > 3.0
    helped = sum(1 for v in data["speedup_pct"].values() if v > 0)
    assert helped >= len(data["speedup_pct"]) * 0.7
