"""Shared fixtures for the per-figure benchmark harness.

One :class:`ExperimentSuite` is shared across every benchmark module,
so (workload, mode) simulations run exactly once per session no matter
how many figures consume them — like a single simulation campaign.

Environment knobs:

* ``REPRO_BENCH_SCALE``      — tiny / bench / full (default bench)
* ``REPRO_BENCH_WORKLOADS``  — comma-separated subset (default: all 17)

Each figure's rendered table is printed and also written to
``benchmarks/results/<name>.txt`` so a ``--benchmark-only`` run leaves
the reproduced evaluation on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentSuite

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    workloads = os.environ.get("REPRO_BENCH_WORKLOADS")
    names = tuple(workloads.split(",")) if workloads else None
    return ExperimentSuite(scale=scale, workloads=names)


@pytest.fixture(scope="session")
def publish():
    """Writer that persists a rendered table and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _publish
