"""Table III — increase in dynamic instructions fetched with the TEA
thread active (paper: +31.9% average, mitigated by fewer wrong-path
fetches in the main thread)."""


def test_table3_fetch_footprint(benchmark, suite, publish):
    data = benchmark.pedantic(suite.table3, rounds=1, iterations=1)
    publish("table3", suite.render_table3())
    benchmark.extra_info["mean_pct"] = data["mean_pct"]
    # The TEA thread costs extra fetches overall...
    assert data["mean_pct"] > 0.0
    # ...but stays bounded.  Our kernels are far more chain-dense than
    # 200M-instruction SPEC regions (see EXPERIMENTS.md), so the bound
    # is looser than the paper's 31.9% average.
    assert data["mean_pct"] < 300.0
