"""Fig. 8 — comparison against Branch Runahead (paper: TEA 10.1% vs
BR 7.3% geomean; BR competitive only on simple control flows)."""


def test_fig8_vs_branch_runahead(benchmark, suite, publish):
    data = benchmark.pedantic(suite.fig8, rounds=1, iterations=1)
    publish("fig8", suite.render_fig8())
    benchmark.extra_info.update(
        tea_pct=data["tea_geomean_pct"],
        runahead_pct=data["runahead_geomean_pct"],
    )
    # Headline shape: TEA beats Branch Runahead overall.  The claim is
    # asserted strictly on full campaigns; small smoke subsets (short
    # runs, accuracy gating not yet converged) only need sane output.
    if len(suite.workloads) >= 10:
        assert data["tea_geomean_pct"] > data["runahead_geomean_pct"]
    else:
        assert data["tea_geomean_pct"] > 0.0
    # BR's relative standing is better on simple control flows than on
    # complex ones (the paper's central Fig. 8 observation).
    if data["complex_names"] and data["simple_names"]:
        tea_s, br_s = data["tea_simple_pct"], data["runahead_simple_pct"]
        tea_c, br_c = data["tea_complex_pct"], data["runahead_complex_pct"]
        rel_simple = br_s - tea_s
        rel_complex = br_c - tea_c
        assert rel_simple >= rel_complex - 2.0 or br_c <= br_s
