"""Fig. 9 — TEA thread on a separate execution engine (paper: 12.3%,
only marginally above the 10.1% on-core result)."""


def test_fig9_dedicated_engine(benchmark, suite, publish):
    data = benchmark.pedantic(suite.fig9, rounds=1, iterations=1)
    publish("fig9", suite.render_fig9())
    benchmark.extra_info["dedicated_geomean_pct"] = data["dedicated_geomean_pct"]
    fig5 = suite.fig5()
    # A dedicated engine never hurts much, and the increment over the
    # on-core design stays modest (the paper's efficiency argument).
    assert data["dedicated_geomean_pct"] > fig5["geomean_pct"] - 3.0
