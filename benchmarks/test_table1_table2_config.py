"""Tables I & II — machine configuration benchmarks.

These verify (and time the construction of) the exact configurations
the paper tabulates: the aggressive baseline core and the TEA thread
structures.  There is nothing to "reproduce" numerically — the tables
are inputs — so the benchmark asserts the parameter values and measures
pipeline construction cost.
"""

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.core.config import CoreConfig
from repro.memory import MemoryConfig
from repro.tea import TeaConfig


def test_table1_core_parameters(benchmark, publish):
    core = CoreConfig()
    mem = MemoryConfig()
    assert core.issue_width == 8
    assert core.frontend_depth == 12
    assert core.rob_entries == 512
    assert core.rs_entries == 352
    assert core.retire_width == 16
    assert core.alu_ports + core.load_ports + core.fp_ports == 12
    assert core.physical_registers == 400
    assert core.load_queue == 256
    assert core.store_queue == 192
    assert mem.l1i_size == 32 * 1024 and mem.l1i_ways == 8
    assert mem.l1d_size == 48 * 1024 and mem.l1d_ways == 12
    assert mem.llc_size == 1024 * 1024 and mem.llc_ways == 16
    assert mem.l1d_latency == 4 and mem.llc_latency == 18
    assert mem.dram.channels == 2
    assert (mem.dram.trp, mem.dram.tcl, mem.dram.trcd) == (16, 16, 16)

    program = assemble("nop\nhalt")

    def build():
        return Pipeline(program, MemoryImage(), SimConfig())

    pipeline = benchmark(build)
    assert pipeline is not None
    publish(
        "table1",
        "Table I — baseline core parameters verified "
        "(8-wide, 512 ROB, 352 RS, 400 PRF, 12 ports, 12-cycle FE, "
        "32KB L1I / 48KB L1D / 1MB LLC, DDR4-2400 16-16-16)",
    )


def test_table2_tea_structures(benchmark, publish):
    tea = TeaConfig()
    assert tea.rs_entries == 192
    assert tea.physical_registers == 192
    assert tea.frontend_delay == 9
    assert tea.h2p_entries == 256 and tea.h2p_ways == 8
    assert tea.h2p_decrement_period == 50_000
    assert tea.fill_buffer_size == 512
    assert tea.walk_cycles == 500
    assert tea.mem_source_entries == 16
    assert tea.block_cache_entries == 512
    assert tea.empty_tag_entries == 256
    assert tea.uops_per_entry == 8
    assert tea.mask_reset_period == 500_000
    assert tea.store_cache_halflines == 16

    program = assemble("nop\nhalt")

    def build():
        return Pipeline(program, MemoryImage(), SimConfig(tea=TeaConfig()))

    pipeline = benchmark(build)
    assert pipeline.tea is not None
    publish(
        "table2",
        "Table II — TEA structures verified (512-uop Fill Buffer, "
        "512-entry Block Cache + 256 empty tags, 256-entry H2P table, "
        "192 RS / 192 PR partition, 16 half-line store cache)",
    )
